package memsys

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/arch"
	"repro/internal/clock"
	"repro/internal/config"
	"repro/internal/network"
	"repro/internal/stats"
	"repro/internal/transport"
)

// cluster wires N tiles' memory nodes over a channel fabric in one process.
type cluster struct {
	cfg   config.Config
	fab   *transport.ChannelFabric
	nets  []*network.Net
	nodes []*Node
}

func testConfig(tiles int) config.Config {
	cfg := config.Default()
	cfg.Tiles = tiles
	// Small caches so eviction paths are exercised quickly.
	cfg.L1I = config.CacheConfig{Enabled: false}
	cfg.L1D = config.CacheConfig{Enabled: true, Size: 1 << 10, Assoc: 2, LineSize: 64, HitLatency: 1}
	cfg.L2 = config.CacheConfig{Enabled: true, Size: 4 << 10, Assoc: 4, LineSize: 64, HitLatency: 8}
	return cfg
}

func newCluster(t testing.TB, cfg config.Config) *cluster {
	t.Helper()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	c := &cluster{cfg: cfg}
	prog := clock.NewProgressWindow(cfg.ProgressWindowSize())
	models := network.NewModels(&cfg, prog)
	c.fab = transport.NewChannelFabric(transport.StripedRoute(1))
	tr := c.fab.Process(0)
	for tile := 0; tile < cfg.Tiles; tile++ {
		ep, err := tr.Register(transport.TileEndpoint(arch.TileID(tile)))
		if err != nil {
			t.Fatal(err)
		}
		net := network.New(arch.TileID(tile), tr, ep, models, prog)
		net.SetPrimary(network.ClassMemory)
		net.Start()
		node := NewNode(arch.TileID(tile), &c.cfg, net, prog)
		go node.Serve()
		c.nets = append(c.nets, net)
		c.nodes = append(c.nodes, node)
	}
	t.Cleanup(c.close)
	return c
}

func (c *cluster) close() {
	for _, n := range c.nets {
		n.Close()
	}
	c.fab.Close()
	for _, n := range c.nodes {
		<-n.Stopped()
	}
}

func TestReadUninitializedIsZero(t *testing.T) {
	c := newCluster(t, testConfig(2))
	buf := bytes.Repeat([]byte{0xFF}, 16)
	res := c.nodes[0].Read(0x1000, buf, 0)
	for _, b := range buf {
		if b != 0 {
			t.Fatal("uninitialized memory not zero")
		}
	}
	if res.Latency <= 0 || res.L2Misses != 1 {
		t.Fatalf("res = %+v", res)
	}
}

func TestWriteThenReadSameTile(t *testing.T) {
	c := newCluster(t, testConfig(2))
	n := c.nodes[0]
	want := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	n.Write(0x2000, want, 0)
	got := make([]byte, 8)
	n.Read(0x2000, got, 100)
	if !bytes.Equal(got, want) {
		t.Fatalf("read back %v, want %v", got, want)
	}
}

func TestHitFasterThanMiss(t *testing.T) {
	c := newCluster(t, testConfig(4))
	n := c.nodes[0]
	buf := make([]byte, 8)
	miss := n.Read(0x3000, buf, 0)
	hit := n.Read(0x3000, buf, miss.Latency)
	if hit.Latency >= miss.Latency {
		t.Fatalf("hit (%d) not faster than miss (%d)", hit.Latency, miss.Latency)
	}
	if hit.L2Misses != 0 {
		t.Fatal("second read missed")
	}
}

func TestCrossTileSharing(t *testing.T) {
	c := newCluster(t, testConfig(4))
	want := []byte("hello, tile one!")
	c.nodes[0].Write(0x4000, want, 0)
	got := make([]byte, len(want))
	c.nodes[1].Read(0x4000, got, 0)
	if !bytes.Equal(got, want) {
		t.Fatalf("tile 1 read %q, want %q", got, want)
	}
	// Now both share; tile 0 still reads its data.
	got0 := make([]byte, len(want))
	c.nodes[0].Read(0x4000, got0, 1000)
	if !bytes.Equal(got0, want) {
		t.Fatal("tile 0 lost its copy's data")
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	c := newCluster(t, testConfig(4))
	addr := arch.Addr(0x5000)
	c.nodes[0].Write(addr, []byte{1}, 0)
	buf := make([]byte, 1)
	c.nodes[1].Read(addr, buf, 0)
	c.nodes[2].Read(addr, buf, 0)
	// Tile 0 writes again: tiles 1 and 2 must be invalidated and re-read
	// the new value.
	c.nodes[0].Write(addr, []byte{42}, 1000)
	c.nodes[1].Read(addr, buf, 2000)
	if buf[0] != 42 {
		t.Fatalf("tile 1 read stale %d", buf[0])
	}
	c.nodes[2].Read(addr, buf, 2000)
	if buf[0] != 42 {
		t.Fatalf("tile 2 read stale %d", buf[0])
	}
}

func TestOwnershipMigration(t *testing.T) {
	c := newCluster(t, testConfig(4))
	addr := arch.Addr(0x6000)
	// The line's M ownership migrates 0 -> 1 -> 2 -> 3, each adding one.
	c.nodes[0].Write(addr, []byte{1}, 0)
	for i := 1; i < 4; i++ {
		buf := make([]byte, 1)
		c.nodes[i].Read(addr, buf, 0)
		buf[0]++
		c.nodes[i].Write(addr, buf, 100)
	}
	got := make([]byte, 1)
	c.nodes[0].Read(addr, got, 10_000)
	if got[0] != 4 {
		t.Fatalf("after migration chain, value = %d, want 4", got[0])
	}
}

func TestUpgradePath(t *testing.T) {
	c := newCluster(t, testConfig(2))
	addr := arch.Addr(0x7000)
	n := c.nodes[0]
	buf := make([]byte, 8)
	n.Read(addr, buf, 0) // S copy
	n.Write(addr, []byte{9, 9, 9, 9, 9, 9, 9, 9}, 100)
	st := n.Stats()
	if st.Upgrades != 1 {
		t.Fatalf("upgrades = %d, want 1", st.Upgrades)
	}
	n.Read(addr, buf, 200)
	if buf[0] != 9 {
		t.Fatal("upgrade lost the write")
	}
}

func TestEvictionWritebackSurvives(t *testing.T) {
	c := newCluster(t, testConfig(2))
	n := c.nodes[0]
	// Write far more lines than the 4 KB L2 holds; every value must
	// survive eviction writebacks.
	const lines = 256
	for i := 0; i < lines; i++ {
		addr := arch.Addr(0x10000 + i*64)
		var v [8]byte
		binary.LittleEndian.PutUint64(v[:], uint64(i)+1)
		n.Write(addr, v[:], arch.Cycles(i*10))
	}
	for i := 0; i < lines; i++ {
		addr := arch.Addr(0x10000 + i*64)
		var v [8]byte
		n.Read(addr, v[:], 1_000_000)
		if got := binary.LittleEndian.Uint64(v[:]); got != uint64(i)+1 {
			t.Fatalf("line %d: read %d, want %d", i, got, i+1)
		}
	}
	st := n.Stats()
	if st.L2Writebacks == 0 {
		t.Fatal("no writebacks despite capacity pressure")
	}
}

func TestFlushAllThenPeek(t *testing.T) {
	c := newCluster(t, testConfig(4))
	want := []byte("persisted through flush")
	c.nodes[2].Write(0x8000, want, 0)
	c.nodes[2].FlushAll(1000)
	got := make([]byte, len(want))
	c.nodes[0].Peek(0x8000, got)
	if !bytes.Equal(got, want) {
		t.Fatalf("peek after flush = %q, want %q", got, want)
	}
}

func TestPokeVisibleThroughCaches(t *testing.T) {
	c := newCluster(t, testConfig(4))
	want := []byte{7, 7, 7, 7}
	c.nodes[0].Poke(0x9000, want)
	got := make([]byte, 4)
	c.nodes[3].Read(0x9000, got, 0)
	if !bytes.Equal(got, want) {
		t.Fatalf("read after poke = %v", got)
	}
}

func TestLineStraddlingAccess(t *testing.T) {
	c := newCluster(t, testConfig(2))
	n := c.nodes[0]
	// 16 bytes starting 8 bytes before a line boundary.
	addr := arch.Addr(0xA000 + 64 - 8)
	want := []byte("0123456789abcdef")
	n.Write(addr, want, 0)
	got := make([]byte, 16)
	n.Read(addr, got, 100)
	if !bytes.Equal(got, want) {
		t.Fatalf("straddling read = %q", got)
	}
}

func TestMissClassificationCold(t *testing.T) {
	c := newCluster(t, testConfig(2))
	n := c.nodes[0]
	buf := make([]byte, 8)
	n.Read(0xB000, buf, 0)
	st := n.Stats()
	if st.MissBy[stats.MissCold] != 1 {
		t.Fatalf("cold misses = %d, want 1", st.MissBy[stats.MissCold])
	}
}

func TestMissClassificationCapacity(t *testing.T) {
	c := newCluster(t, testConfig(2))
	n := c.nodes[0]
	buf := make([]byte, 8)
	// Touch enough lines to evict the first, then re-read it.
	const lines = 256
	for i := 0; i < lines; i++ {
		n.Read(arch.Addr(0xC000+i*64), buf, 0)
	}
	n.Read(0xC000, buf, 1_000_000)
	st := n.Stats()
	if st.MissBy[stats.MissCapacity] == 0 {
		t.Fatalf("no capacity miss recorded: %v", st.MissBy)
	}
}

func TestMissClassificationTrueSharing(t *testing.T) {
	c := newCluster(t, testConfig(2))
	addr := arch.Addr(0xD000)
	buf := make([]byte, 8)
	c.nodes[0].Read(addr, buf, 0)      // tile 0 caches word 0
	c.nodes[1].Write(addr, buf, 0)     // tile 1 writes word 0: invalidates tile 0
	c.nodes[0].Read(addr, buf, 10_000) // tile 0 re-reads word 0: true sharing
	st := c.nodes[0].Stats()
	if st.MissBy[stats.MissTrueSharing] != 1 {
		t.Fatalf("true-sharing misses = %d (%v)", st.MissBy[stats.MissTrueSharing], st.MissBy)
	}
}

func TestMissClassificationFalseSharing(t *testing.T) {
	c := newCluster(t, testConfig(2))
	base := arch.Addr(0xE000)
	buf := make([]byte, 8)
	c.nodes[0].Read(base, buf, 0)      // tile 0 reads word 0
	c.nodes[1].Write(base+32, buf, 0)  // tile 1 writes word 4 (same line)
	c.nodes[0].Read(base, buf, 10_000) // tile 0 re-reads word 0: false sharing
	st := c.nodes[0].Stats()
	if st.MissBy[stats.MissFalseSharing] != 1 {
		t.Fatalf("false-sharing misses = %d (%v)", st.MissBy[stats.MissFalseSharing], st.MissBy)
	}
}

func TestDirNBPointerReclaim(t *testing.T) {
	cfg := testConfig(4)
	cfg.Coherence = config.CoherenceConfig{Kind: config.LimitedNB, DirPointers: 1, DirLatency: 10}
	c := newCluster(t, cfg)
	addr := arch.Addr(0xF000)
	buf := make([]byte, 8)
	c.nodes[0].Read(addr, buf, 0)
	c.nodes[1].Read(addr, buf, 0) // evicts tile 0's pointer and copy
	// Tile 0 must re-miss (its copy was invalidated by the reclaim).
	before := c.nodes[0].Stats().L2Misses
	c.nodes[0].Read(addr, buf, 10_000)
	after := c.nodes[0].Stats().L2Misses
	if after != before+1 {
		t.Fatalf("Dir_1NB did not invalidate displaced sharer (misses %d -> %d)", before, after)
	}
}

func TestLimitLESSKeepsAllSharersAndTraps(t *testing.T) {
	cfg := testConfig(8)
	cfg.Coherence = config.CoherenceConfig{Kind: config.LimitLESS, DirPointers: 2, TrapLatency: 100, DirLatency: 10}
	c := newCluster(t, cfg)
	addr := arch.Addr(0x1F000)
	buf := make([]byte, 8)
	for i := 0; i < 8; i++ {
		c.nodes[i].Read(addr, buf, 0)
	}
	// All eight keep their copy: re-reads all hit.
	for i := 0; i < 8; i++ {
		before := c.nodes[i].Stats().L2Misses
		c.nodes[i].Read(addr, buf, 10_000)
		if c.nodes[i].Stats().L2Misses != before {
			t.Fatalf("tile %d lost its copy under LimitLESS", i)
		}
	}
	var traps uint64
	for i := 0; i < 8; i++ {
		traps += c.nodes[i].Stats().DirTraps
	}
	if traps == 0 {
		t.Fatal("no LimitLESS traps for 8 sharers with 2 pointers")
	}
}

func TestRemoteLatencyExceedsLocal(t *testing.T) {
	cfg := testConfig(16)
	c := newCluster(t, cfg)
	buf := make([]byte, 8)
	// Line homed at tile 0 (line 16k*64... choose addr so home==0): line L
	// homes at L % 16 == 0.
	localAddr := arch.Addr(16 * 64 * 100) // line 1600, home 0
	remoteAddr := arch.Addr((16*100 + 15) * 64)
	resLocal := c.nodes[0].Read(localAddr, buf, 0)
	resRemote := c.nodes[0].Read(remoteAddr, buf, 0)
	if resRemote.Latency <= resLocal.Latency {
		t.Fatalf("remote home (%d) not slower than local home (%d)",
			resRemote.Latency, resLocal.Latency)
	}
}

func TestConcurrentDisjointWriters(t *testing.T) {
	cfg := testConfig(8)
	c := newCluster(t, cfg)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			n := c.nodes[i]
			base := arch.Addr(0x100000 + i*0x10000)
			for k := 0; k < 200; k++ {
				var v [8]byte
				binary.LittleEndian.PutUint64(v[:], uint64(i*1000+k))
				n.Write(base+arch.Addr(k*64), v[:], arch.Cycles(k))
			}
			for k := 0; k < 200; k++ {
				var v [8]byte
				n.Read(base+arch.Addr(k*64), v[:], 100_000)
				if got := binary.LittleEndian.Uint64(v[:]); got != uint64(i*1000+k) {
					t.Errorf("tile %d line %d: got %d", i, k, got)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

func TestConcurrentSharedCounterCoherence(t *testing.T) {
	// Tiles ping-pong ownership of interleaved words in the same lines.
	// Every tile owns word (tile%8) of each line; after the storm, each
	// word holds its owner's final value — no lost or torn writes.
	cfg := testConfig(4)
	c := newCluster(t, cfg)
	const lines = 16
	const iters = 50
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			n := c.nodes[i]
			rng := rand.New(rand.NewSource(int64(i)))
			for k := 0; k < iters; k++ {
				line := rng.Intn(lines)
				addr := arch.Addr(0x200000 + line*64 + i*8)
				var v [8]byte
				binary.LittleEndian.PutUint64(v[:], uint64(i+1)*1_000_000+uint64(k))
				n.Write(addr, v[:], arch.Cycles(k*100))
			}
		}(i)
	}
	wg.Wait()
	// Verify: every word belongs to exactly its writer (value prefix).
	for i := 0; i < 4; i++ {
		for line := 0; line < lines; line++ {
			addr := arch.Addr(0x200000 + line*64 + i*8)
			var v [8]byte
			c.nodes[0].Read(addr, v[:], 1_000_000)
			got := binary.LittleEndian.Uint64(v[:])
			if got != 0 && (got < uint64(i+1)*1_000_000 || got >= uint64(i+2)*1_000_000) {
				t.Fatalf("word of tile %d line %d holds foreign value %d", i, line, got)
			}
		}
	}
}

func TestFetchFillsL1I(t *testing.T) {
	cfg := testConfig(2)
	cfg.L1I = config.CacheConfig{Enabled: true, Size: 1 << 10, Assoc: 2, LineSize: 64, HitLatency: 1}
	c := newCluster(t, cfg)
	n := c.nodes[0]
	pc := arch.Addr(0x400000)
	first := n.Fetch(pc, 4, 0)
	second := n.Fetch(pc, 4, first.Latency)
	if second.Latency >= first.Latency {
		t.Fatalf("refetch (%d) not faster than cold fetch (%d)", second.Latency, first.Latency)
	}
	st := n.Stats()
	if st.L1IHits == 0 {
		t.Fatal("no L1I hits")
	}
}

func TestDRAMQueueingContention(t *testing.T) {
	cfg := testConfig(2)
	c := newCluster(t, cfg)
	n := c.nodes[0]
	buf := make([]byte, 8)
	// Repeated same-timestamp misses to lines with the same home build up
	// queueing delay at that home's DRAM controller.
	first := n.Read(arch.Addr(0*2*64), buf, 1000)
	var last AccessResult
	for i := 1; i < 40; i++ {
		last = n.Read(arch.Addr(i*2*64), buf, 1000)
	}
	if last.Latency <= first.Latency {
		t.Fatalf("DRAM queueing did not grow: first %d, last %d", first.Latency, last.Latency)
	}
}

func TestStatsAccounting(t *testing.T) {
	c := newCluster(t, testConfig(2))
	n := c.nodes[0]
	buf := make([]byte, 8)
	// A remotely homed line (line 0x10040>>6 = 1025, home 1025%2 = tile 1),
	// so the miss crosses the network: the local-home shortcut serves
	// locally homed lines without any packets at all.
	n.Read(0x10040, buf, 0)
	n.Write(0x10040, buf, 100)
	st := n.Stats()
	if st.Loads != 1 || st.Stores != 1 {
		t.Fatalf("loads=%d stores=%d", st.Loads, st.Stores)
	}
	if st.MemAccesses == 0 || st.MemLatencyTotal <= 0 {
		t.Fatalf("latency accounting: %d accesses, %d cycles", st.MemAccesses, st.MemLatencyTotal)
	}
	if st.NetPacketsSent == 0 {
		t.Fatal("network counters empty")
	}
}

func TestManyTilesSameLineReadStorm(t *testing.T) {
	cfg := testConfig(16)
	c := newCluster(t, cfg)
	addr := arch.Addr(0x300000)
	c.nodes[0].Write(addr, []byte{99}, 0)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			buf := make([]byte, 1)
			c.nodes[i].Read(addr, buf, 0)
			if buf[0] != 99 {
				t.Errorf("tile %d read %d", i, buf[0])
			}
		}(i)
	}
	wg.Wait()
}

func TestWriteStormOneLine(t *testing.T) {
	cfg := testConfig(8)
	c := newCluster(t, cfg)
	addr := arch.Addr(0x310000)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < 25; k++ {
				c.nodes[i].Write(addr+arch.Addr(i), []byte{byte(i)}, arch.Cycles(k))
			}
		}(i)
	}
	wg.Wait()
	// Each byte holds its final writer's value.
	for i := 0; i < 8; i++ {
		var b [1]byte
		c.nodes[0].Read(addr+arch.Addr(i), b[:], 1_000_000)
		if b[0] != byte(i) {
			t.Fatalf("byte %d = %d", i, b[0])
		}
	}
}

func TestMsgNames(t *testing.T) {
	for m := uint8(0); m <= msgPokeAck; m++ {
		if msgName(m) == "" {
			t.Fatal("empty message name")
		}
	}
	if msgName(200) != fmt.Sprintf("msg(%d)", 200) {
		t.Fatal("unknown message name")
	}
}

// TestHitPathZeroAllocAt256Tiles pins the steady-state allocation budget
// of the lock-free hit path at a 256-tile geometry: once a line is cached
// locally, reads and writes must index the structure-of-arrays cache and
// directory state without allocating per access. A regression here turns
// every simulated memory reference into garbage-collector work, which at
// thousand-tile scale dominates the run.
func TestHitPathZeroAllocAt256Tiles(t *testing.T) {
	c := newCluster(t, testConfig(256))
	n := c.nodes[0]
	buf := make([]byte, 8)
	// Warm: the write takes the line Modified in the local L1D, so every
	// access below is a pure hit.
	n.Write(0x9000, buf, 0)
	n.Read(0x9000, buf, 100)
	now := arch.Cycles(200)
	allocs := testing.AllocsPerRun(1000, func() {
		n.Read(0x9000, buf, now)
		n.Write(0x9000, buf, now+1)
		now += 2
	})
	if allocs != 0 {
		t.Fatalf("hit path allocates %.1f objects per access pair, want 0", allocs)
	}
}

// BenchmarkLocalHitPath256 drives the same steady-state hit path for
// profiling (-benchmem / -memprofile should show zero per-access
// allocations).
func BenchmarkLocalHitPath256(b *testing.B) {
	c := newCluster(b, testConfig(256))
	n := c.nodes[0]
	buf := make([]byte, 8)
	n.Write(0x9000, buf, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Read(0x9000, buf, arch.Cycles(i))
	}
}
