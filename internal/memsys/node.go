package memsys

import (
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/arch"
	"repro/internal/cache"
	"repro/internal/clock"
	"repro/internal/config"
	"repro/internal/directory"
	"repro/internal/dram"
	"repro/internal/network"
	"repro/internal/stats"
	"repro/internal/transport"
)

// replyInfo is what the server hands back to a core thread blocked on a
// miss.
type replyInfo struct {
	// arrival is the simulated time the reply reached this tile.
	arrival arch.Cycles
	// kind classifies the miss.
	kind stats.MissKind
	// upgraded reports an S->M upgrade (counted separately from misses).
	upgraded bool
	// data is the peek result for peek requests.
	data []byte
}

// pendingReq is the tile's single outstanding memory request. The server
// completes it when the home's reply arrives: it inserts the line, applies
// the operation under the hierarchy mutex, and signals done.
type pendingReq struct {
	seq     uint64
	line    cache.LineAddr
	isWrite bool
	ifetch  bool
	peek    bool
	poke    bool
	off     int    // byte offset within the line
	wbuf    []byte // bytes to write (store)
	rbuf    []byte // destination for loaded bytes
	mask    uint64 // accessed-words mask
	sentAt  arch.Cycles
	done    chan replyInfo
}

// dirLine is the home-side state of one line: the directory entry, the
// in-flight transaction if any, and requests queued behind it.
type dirLine struct {
	entry   *directory.Entry
	busy    *txn
	pending []network.Packet
}

// dirShard is one independently locked region of the tile's home
// directory. Home-side protocol state is sharded by line address so that
// directory traffic for different line regions, and above all the tile's
// own core (which runs under Node.mu, not a shard lock), never contend on
// a single per-tile mutex. Each shard carries its own sub-request sequence
// counter and home-side statistics so nothing shared remains.
type dirShard struct {
	mu    sync.Mutex
	lines map[cache.LineAddr]*dirLine
	// homeSeq numbers this shard's home-side sub-requests (Inv/Wb/Flush).
	// Replies carry it back; a per-shard counter is unambiguous because
	// replies are matched per line and lines never change shards.
	homeSeq uint64
	// Home-side stat counters, aggregated by Stats().
	dirRequests, dirTraps, invSent uint64
}

// defaultDirShards is used when Config.Coherence.DirShards is zero.
const defaultDirShards = 16

// txn is one in-flight home transaction (blocking directory: one per line).
type txn struct {
	homeSeq   uint64 // matches sub-request replies
	reqType   uint8  // msgShReq or msgExReq
	requester arch.TileID
	reqSeq    uint64 // requester's sequence number, echoed in the reply
	reqMask   uint64
	upgrade   bool
	ifetch    bool
	line      cache.LineAddr

	waitAcks  int         // outstanding InvReps
	waitData  bool        // outstanding WbRep/FlushRep
	dataFrom  arch.TileID // tile the data is expected from
	haveData  bool
	data      []byte
	dataMask  uint64 // accumulated write mask from the flushing owner
	latest    arch.Cycles
	trapExtra arch.Cycles // LimitLESS software trap cycles to charge
}

// Node is one tile's memory subsystem. Its state is split into three lock
// domains so the hot paths do not serialize on one per-tile mutex:
//
//   - the core domain (mu): caches, the single pending-miss slot, and miss
//     classification state — everything the tile's own core touches;
//   - the home domain (shards): directory state for lines homed here,
//     sharded by line region, each shard with its own mutex;
//   - the DRAM controller (dramMu), shared by all home shards.
//
// The server goroutine takes exactly one domain lock per message, and the
// domains never nest, so lock ordering is trivial.
type Node struct {
	tile arch.TileID
	cfg  *config.Config
	net  *network.Net

	// Cache hierarchy, guarded by mu. L1s may be nil (disabled).
	mu  sync.Mutex
	l1i *cache.Cache
	l1d *cache.Cache
	l2  *cache.Cache

	// Home role: the directory, sharded by line region. shardMask is
	// len(shards)-1 (the count is a power of two).
	shards    []dirShard
	shardMask uint64

	// DRAM controller, shared by all home shards.
	dramMu sync.Mutex
	dram   *dram.Controller

	// out batches the server goroutine's outgoing protocol messages per
	// destination; Serve flushes it before blocking and before waking the
	// local core. Owned by the server goroutine.
	out *network.Batch

	// Single outstanding core request, guarded by mu. reqSlot and
	// reqDone back every request: with one outstanding request per tile,
	// the record and its completion channel are reused instead of
	// allocated per miss.
	pending *pendingReq
	reqSlot pendingReq
	reqDone chan replyInfo
	seq     uint64

	// Miss classification state, guarded by mu.
	everAccessed map[cache.LineAddr]struct{}
	invalidated  map[cache.LineAddr]struct{}

	// Outstanding modified-line writebacks (for FlushAll).
	outstandingWB atomic.Int64
	wbDrained     chan struct{} // signaled when outstandingWB may be zero

	// Statistics, guarded by mu; home-side counters live in the shards and
	// DRAM counters under dramMu, all aggregated by Stats().
	st stats.Tile

	// Payload scratch buffers: an encoded payload lives only until the
	// next Send (which copies it into the wire frame), so each sending
	// context recycles one buffer. coreScratch is guarded by mu;
	// srvScratch and grantBuf belong to the server goroutine.
	coreScratch []byte
	srvScratch  []byte
	grantBuf    []byte

	lineBits uint
	lineSize int

	stopped chan struct{}
}

// NewNode builds the memory subsystem of one tile. progress feeds the DRAM
// queue model; net must be the tile's network interface.
func NewNode(tile arch.TileID, cfg *config.Config, net *network.Net, progress *clock.ProgressWindow) *Node {
	nshards := cfg.Coherence.DirShards
	if nshards == 0 {
		nshards = defaultDirShards
	}
	n := &Node{
		tile:         tile,
		cfg:          cfg,
		net:          net,
		shards:       make([]dirShard, nshards),
		shardMask:    uint64(nshards - 1),
		dram:         dram.New(cfg, progress),
		out:          net.NewBatch(),
		everAccessed: make(map[cache.LineAddr]struct{}),
		invalidated:  make(map[cache.LineAddr]struct{}),
		wbDrained:    make(chan struct{}, 1),
		reqDone:      make(chan replyInfo, 1),
		lineSize:     cfg.LineSize(),
		stopped:      make(chan struct{}),
	}
	n.grantBuf = make([]byte, n.lineSize)
	for i := range n.shards {
		n.shards[i].lines = make(map[cache.LineAddr]*dirLine)
	}
	n.st.TileID = tile
	if cfg.L1I.Enabled {
		n.l1i = cache.New(cfg.L1I)
	}
	if cfg.L1D.Enabled {
		n.l1d = cache.New(cfg.L1D)
	}
	n.l2 = cache.New(cfg.L2)
	n.lineBits = n.l2.LineBits()
	return n
}

// Tile returns the tile this node belongs to.
func (n *Node) Tile() arch.TileID { return n.tile }

// LineSize returns the coherence line size.
func (n *Node) LineSize() int { return n.lineSize }

func (n *Node) lineOf(a arch.Addr) cache.LineAddr {
	return cache.LineAddr(uint64(a) >> n.lineBits)
}

func (n *Node) homeOf(l cache.LineAddr) arch.TileID {
	return arch.TileID(uint64(l) % uint64(n.cfg.Tiles))
}

// shardFor maps a line homed at this tile to its directory shard. Lines
// are striped across homes (line mod Tiles), so dividing by the tile count
// yields this home's dense per-line index; consecutive local lines land in
// consecutive shards.
func (n *Node) shardFor(l cache.LineAddr) *dirShard {
	return &n.shards[(uint64(l)/uint64(n.cfg.Tiles))&n.shardMask]
}

// Stats snapshots the tile's statistics. Safe to call after Serve stops;
// during simulation it takes each domain lock in turn (never nested).
func (n *Node) Stats() stats.Tile {
	n.mu.Lock()
	st := n.st
	if n.l1i != nil {
		st.L1IHits, st.L1IMisses = n.l1i.Hits, n.l1i.Misses
	}
	if n.l1d != nil {
		st.L1DHits, st.L1DMisses = n.l1d.Hits, n.l1d.Misses
	}
	st.L2Hits, st.L2Misses = n.l2.Hits, n.l2.Misses
	st.L2Evictions = n.l2.Evictions
	st.L2Writebacks = n.l2.Writebacks
	n.mu.Unlock()
	for i := range n.shards {
		sh := &n.shards[i]
		sh.mu.Lock()
		st.DirRequests += sh.dirRequests
		st.DirTraps += sh.dirTraps
		st.InvSent += sh.invSent
		sh.mu.Unlock()
	}
	n.dramMu.Lock()
	st.DRAMReads, st.DRAMWrites = n.dram.Reads, n.dram.Writes
	st.DRAMQueueWait = n.dram.TotalQueueDelay
	n.dramMu.Unlock()
	ns := n.net.Stats()
	for c := network.Class(0); c < network.NumClasses; c++ {
		st.NetPacketsSent += ns.PacketsSent[c].Load()
		st.NetBytesSent += ns.BytesSent[c].Load()
		st.NetPacketsRecv += ns.PacketsRecv[c].Load()
	}
	return st
}

// send transmits a memory-class packet immediately. It is the core-thread
// path (miss requests, FlushAll writebacks, peek/poke). Sends racing
// simulation teardown (transport already closed) are dropped silently —
// the receiver is gone; any other transport failure is unrecoverable
// simulator state.
func (n *Node) send(typ uint8, dst arch.TileID, seq uint64, payload []byte, now arch.Cycles) arch.Cycles {
	arrival, err := n.net.Send(network.ClassMemory, typ, dst, seq, payload, now)
	if err != nil {
		if errors.Is(err, transport.ErrClosed) {
			return now
		}
		panic("memsys: transport send failed: " + err.Error())
	}
	return arrival
}

// sendSrv queues a memory-class packet on the server goroutine's batch;
// Serve flushes it before blocking and before waking the local core, which
// preserves per-sender FIFO against the core thread's immediate sends.
// Only the server goroutine may call it.
func (n *Node) sendSrv(typ uint8, dst arch.TileID, seq uint64, payload []byte, now arch.Cycles) arch.Cycles {
	return n.out.Send(network.ClassMemory, typ, dst, seq, payload, now)
}

// The enc helpers encode payloads into the owning context's scratch
// buffer; the result is valid until that context's next encode or send.
func (n *Node) srvEncLine(line uint64) []byte {
	n.srvScratch = encodeLine(n.srvScratch, line)
	return n.srvScratch
}

func (n *Node) srvEncData(p dataPayload) []byte {
	n.srvScratch = encodeData(n.srvScratch, p)
	return n.srvScratch
}

func (n *Node) srvEncPeek(p peekPayload) []byte {
	n.srvScratch = encodePeek(n.srvScratch, p)
	return n.srvScratch
}

func (n *Node) coreEncReq(p reqPayload) []byte {
	n.coreScratch = encodeReq(n.coreScratch, p)
	return n.coreScratch
}

func (n *Node) coreEncLine(line uint64) []byte {
	n.coreScratch = encodeLine(n.coreScratch, line)
	return n.coreScratch
}

func (n *Node) coreEncData(p dataPayload) []byte {
	n.coreScratch = encodeData(n.coreScratch, p)
	return n.coreScratch
}

func (n *Node) coreEncPeek(p peekPayload) []byte {
	n.coreScratch = encodePeek(n.coreScratch, p)
	return n.coreScratch
}

// dramRead and dramWrite serialize home-shard access to the shared DRAM
// controller.
func (n *Node) dramRead(line uint64, buf []byte, now arch.Cycles) arch.Cycles {
	n.dramMu.Lock()
	defer n.dramMu.Unlock()
	return n.dram.ReadLine(line, buf, now)
}

func (n *Node) dramWrite(line uint64, data []byte, now arch.Cycles) {
	n.dramMu.Lock()
	defer n.dramMu.Unlock()
	n.dram.WriteLine(line, data, now)
}
