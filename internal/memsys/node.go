package memsys

import (
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/arch"
	"repro/internal/cache"
	"repro/internal/clock"
	"repro/internal/config"
	"repro/internal/directory"
	"repro/internal/dram"
	"repro/internal/network"
	"repro/internal/stats"
	"repro/internal/transport"
)

// replyInfo is what the server hands back to a core thread blocked on a
// miss.
type replyInfo struct {
	// arrival is the simulated time the reply reached this tile.
	arrival arch.Cycles
	// kind classifies the miss.
	kind stats.MissKind
	// upgraded reports an S->M upgrade (counted separately from misses).
	upgraded bool
	// data is the peek result for peek requests.
	data []byte
}

// pendingReq is the tile's single outstanding memory request. The server
// completes it when the home's reply arrives: it inserts the line, applies
// the operation under the hierarchy mutex, and signals done.
type pendingReq struct {
	seq     uint64
	line    cache.LineAddr
	isWrite bool
	ifetch  bool
	peek    bool
	poke    bool
	off     int    // byte offset within the line
	wbuf    []byte // bytes to write (store)
	rbuf    []byte // destination for loaded bytes
	mask    uint64 // accessed-words mask
	sentAt  arch.Cycles
	done    chan replyInfo
}

// dirLine is the home-side state of one line: the directory entry, the
// in-flight transaction if any, and requests queued behind it.
type dirLine struct {
	entry   *directory.Entry
	busy    *txn
	pending []network.Packet
}

// txn is one in-flight home transaction (blocking directory: one per line).
type txn struct {
	homeSeq   uint64 // matches sub-request replies
	reqType   uint8  // msgShReq or msgExReq
	requester arch.TileID
	reqSeq    uint64 // requester's sequence number, echoed in the reply
	reqMask   uint64
	upgrade   bool
	ifetch    bool
	line      cache.LineAddr

	waitAcks  int         // outstanding InvReps
	waitData  bool        // outstanding WbRep/FlushRep
	dataFrom  arch.TileID // tile the data is expected from
	haveData  bool
	data      []byte
	dataMask  uint64 // accumulated write mask from the flushing owner
	latest    arch.Cycles
	trapExtra arch.Cycles // LimitLESS software trap cycles to charge
}

// Node is one tile's memory subsystem.
type Node struct {
	tile arch.TileID
	cfg  *config.Config
	net  *network.Net

	// Cache hierarchy, guarded by mu. L1s may be nil (disabled).
	mu  sync.Mutex
	l1i *cache.Cache
	l1d *cache.Cache
	l2  *cache.Cache

	// Home role, touched only by the server goroutine.
	dir  map[cache.LineAddr]*dirLine
	dram *dram.Controller

	// Single outstanding core request, guarded by mu.
	pending *pendingReq
	seq     uint64
	// homeSeq numbers home-side sub-requests (Inv/Wb/Flush), guarded by mu.
	homeSeq uint64

	// Miss classification state, guarded by mu.
	everAccessed map[cache.LineAddr]struct{}
	invalidated  map[cache.LineAddr]struct{}

	// Outstanding modified-line writebacks (for FlushAll).
	outstandingWB atomic.Int64
	wbDrained     chan struct{} // signaled when outstandingWB may be zero

	// Statistics, guarded by mu except DRAM fields (server-only).
	st stats.Tile

	lineBits uint
	lineSize int

	stopped chan struct{}
}

// NewNode builds the memory subsystem of one tile. progress feeds the DRAM
// queue model; net must be the tile's network interface.
func NewNode(tile arch.TileID, cfg *config.Config, net *network.Net, progress *clock.ProgressWindow) *Node {
	n := &Node{
		tile:         tile,
		cfg:          cfg,
		net:          net,
		dir:          make(map[cache.LineAddr]*dirLine),
		dram:         dram.New(cfg, progress),
		everAccessed: make(map[cache.LineAddr]struct{}),
		invalidated:  make(map[cache.LineAddr]struct{}),
		wbDrained:    make(chan struct{}, 1),
		lineSize:     cfg.LineSize(),
		stopped:      make(chan struct{}),
	}
	n.st.TileID = tile
	if cfg.L1I.Enabled {
		n.l1i = cache.New(cfg.L1I)
	}
	if cfg.L1D.Enabled {
		n.l1d = cache.New(cfg.L1D)
	}
	n.l2 = cache.New(cfg.L2)
	n.lineBits = n.l2.LineBits()
	return n
}

// Tile returns the tile this node belongs to.
func (n *Node) Tile() arch.TileID { return n.tile }

// LineSize returns the coherence line size.
func (n *Node) LineSize() int { return n.lineSize }

func (n *Node) lineOf(a arch.Addr) cache.LineAddr {
	return cache.LineAddr(uint64(a) >> n.lineBits)
}

func (n *Node) homeOf(l cache.LineAddr) arch.TileID {
	return arch.TileID(uint64(l) % uint64(n.cfg.Tiles))
}

// Stats snapshots the tile's statistics. Safe to call after Serve stops;
// during simulation it takes the hierarchy mutex.
func (n *Node) Stats() stats.Tile {
	n.mu.Lock()
	defer n.mu.Unlock()
	st := n.st
	if n.l1i != nil {
		st.L1IHits, st.L1IMisses = n.l1i.Hits, n.l1i.Misses
	}
	if n.l1d != nil {
		st.L1DHits, st.L1DMisses = n.l1d.Hits, n.l1d.Misses
	}
	st.L2Hits, st.L2Misses = n.l2.Hits, n.l2.Misses
	st.L2Evictions = n.l2.Evictions
	st.L2Writebacks = n.l2.Writebacks
	st.DRAMReads, st.DRAMWrites = n.dram.Reads, n.dram.Writes
	st.DRAMQueueWait = n.dram.TotalQueueDelay
	ns := n.net.Stats()
	for c := network.Class(0); c < network.NumClasses; c++ {
		st.NetPacketsSent += ns.PacketsSent[c].Load()
		st.NetBytesSent += ns.BytesSent[c].Load()
		st.NetPacketsRecv += ns.PacketsRecv[c].Load()
	}
	return st
}

// send transmits a memory-class packet. Sends racing simulation teardown
// (transport already closed) are dropped silently — the receiver is gone;
// any other transport failure is unrecoverable simulator state.
func (n *Node) send(typ uint8, dst arch.TileID, seq uint64, payload []byte, now arch.Cycles) arch.Cycles {
	arrival, err := n.net.Send(network.ClassMemory, typ, dst, seq, payload, now)
	if err != nil {
		if errors.Is(err, transport.ErrClosed) {
			return now
		}
		panic("memsys: transport send failed: " + err.Error())
	}
	return arrival
}
