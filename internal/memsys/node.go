package memsys

import (
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/arch"
	"repro/internal/cache"
	"repro/internal/clock"
	"repro/internal/config"
	"repro/internal/directory"
	"repro/internal/dram"
	"repro/internal/network"
	"repro/internal/stats"
	"repro/internal/transport"
)

// pendingReq is the tile's single outstanding memory request. The server
// goroutine routes the completing reply packet to done; the core context
// applies it (installs the line, performs the operation) on wake.
type pendingReq struct {
	seq     uint64
	line    cache.LineAddr
	isWrite bool
	ifetch  bool
	peek    bool
	poke    bool
	off     int    // byte offset within the line
	wbuf    []byte // bytes to write (store)
	rbuf    []byte // destination for loaded bytes
	mask    uint64 // accessed-words mask
	sentAt  arch.Cycles
	done    chan network.Packet
}

// dirLine is the home-side state of one line: a handle into the shard's
// directory-entry arena, the in-flight transaction if any, and requests
// queued behind it. Entry state lives in the shard's structure-of-arrays
// Store (one bulk allocation per growth step, contiguous sharer words)
// rather than embedded per line.
type dirLine struct {
	entry   directory.Ref
	busy    *txn
	pending []network.Packet
}

// dirShard is one independently locked region of the tile's home
// directory. Home-side protocol state is sharded by line address so that
// directory traffic for different line regions, and above all the tile's
// own core (which owns the caches lock-free), never contend on a single
// per-tile mutex. Each shard carries its own sub-request sequence counter,
// transaction free list, and home-side statistics so nothing shared
// remains.
type dirShard struct {
	mu    sync.Mutex
	lines map[cache.LineAddr]*dirLine
	// store is the shard's directory-entry arena (structure-of-arrays);
	// dirLine.entry handles index into it. Guarded by mu.
	store *directory.Store
	// homeSeq numbers this shard's home-side sub-requests (Inv/Wb/Flush).
	// Replies carry it back; a per-shard counter is unambiguous because
	// replies are matched per line and lines never change shards.
	homeSeq uint64
	// txnFree recycles transaction records (and their flush-data buffers):
	// one transaction begins per home request, so pooling them removes a
	// steady per-miss allocation. Guarded by mu like the rest.
	txnFree []*txn
	// slab carves dirLine records in chunks: one allocation per chunk
	// instead of one per line ever homed here. Records are pointed into
	// and never move (the spent chunk is dropped, not regrown).
	slab []dirLine
	// Home-side stat counters, aggregated by Stats().
	dirRequests, dirTraps, invSent uint64
}

// defaultDirShards is used when Config.Coherence.DirShards is zero.
const defaultDirShards = 16

// txn is one in-flight home transaction (blocking directory: one per line).
type txn struct {
	homeSeq   uint64 // matches sub-request replies
	reqType   uint8  // msgShReq or msgExReq
	requester arch.TileID
	reqSeq    uint64 // requester's sequence number, echoed in the reply
	reqMask   uint64
	upgrade   bool
	ifetch    bool
	line      cache.LineAddr

	waitAcks int         // outstanding InvReps
	waitData bool        // outstanding WbRep/FlushRep
	dataFrom arch.TileID // tile the data is expected from
	haveData bool
	// data holds flushed owner data in a buffer owned by the transaction
	// record; reset (not reallocated) when the record is recycled.
	data      []byte
	dataMask  uint64 // accumulated write mask from the flushing owner
	latest    arch.Cycles
	trapExtra arch.Cycles // LimitLESS software trap cycles to charge
}

// coreState values. The word is the entire fast-path synchronization
// protocol — a biased, single-writer ownership token over the core domain
// (see DESIGN.md §13):
//
//	0            free: no one is touching the caches. The core claims
//	             with one CAS per access; the server claims transiently
//	             (under mu) to apply an intervention against an idle tile.
//	stCoreActive the core context is inside an access and owns the domain
//	             lock-free.
//	stSrvBusy    the server goroutine owns the domain (idle tile) and is
//	             applying interventions. Set and cleared only under mu.
//	stPending    ORed onto stCoreActive by the server: interventions are
//	             queued in the mailbox. The core's release CAS fails on it
//	             and drains the backlog before going idle, so intervention
//	             latency is bounded by the current access.
const (
	stCoreActive = 1 << 0
	stSrvBusy    = 1 << 1
	stPending    = 1 << 2
)

// Node is one tile's memory subsystem. Its state is split into ownership
// domains so the hot path — an L1/L2 hit — takes no locks at all:
//
//   - the core domain: caches, miss-classification state, and the hot
//     statistics counters. Single-writer: it is mutated by the core
//     context (the goroutine driving Read/Write/Fetch) while the tile is
//     unparked, and by the server goroutine only while the tile is parked.
//     The coreState word plus mu mediate every ownership transfer.
//   - the home domain (shards): directory state for lines homed here,
//     sharded by line region, each shard with its own mutex.
//   - the DRAM controller (dramMu), shared by all home shards.
//
// The server goroutine takes exactly one domain lock per message, and the
// domains never nest, so lock ordering is trivial.
type Node struct {
	tile arch.TileID
	cfg  *config.Config
	net  *network.Net

	// Cache hierarchy — core domain (see above). L1s may be nil (disabled).
	l1i *cache.Cache
	l1d *cache.Cache
	l2  *cache.Cache

	// coreState is the fast path's only synchronization: the biased
	// ownership token over the core domain (values above). The hit path's
	// entire locking cost is one claim CAS and one release CAS on this
	// core-local word.
	coreState atomic.Uint32

	// mu guards the intervention mailbox, the pending-request slot, and
	// the slow-path coreState transitions (server claims, drains,
	// completion hand-off). It is NOT the cache lock: the hit path never
	// takes it.
	mu    sync.Mutex
	intvQ []network.Packet

	// Home role: the directory, sharded by line region. shardMask is
	// len(shards)-1 (the count is a power of two).
	shards    []dirShard
	shardMask uint64

	// DRAM controller, shared by all home shards.
	dramMu sync.Mutex
	dram   *dram.Controller

	// out batches the server goroutine's outgoing protocol messages per
	// destination; Serve flushes it before blocking and before waking the
	// local core. Owned by the server goroutine.
	out *network.Batch

	// Single outstanding core request, guarded by mu. reqSlot and
	// reqDone back every request: with one outstanding request per tile,
	// the record and its completion channel are reused instead of
	// allocated per miss.
	pending *pendingReq
	reqSlot pendingReq
	reqDone chan network.Packet
	seq     uint64

	// Miss classification state — core domain.
	everAccessed map[cache.LineAddr]struct{}
	invalidated  map[cache.LineAddr]struct{}

	// Outstanding modified-line writebacks (for FlushAll).
	outstandingWB atomic.Int64
	wbDrained     chan struct{} // signaled when outstandingWB may be zero

	// selfInflight counts this tile's own memory-class messages to itself
	// that have been sent but not yet dispatched (evictions to the local
	// home, replies to local-home interventions, and their acks). The
	// local-home miss shortcut requires it to be zero: a self-directed
	// message still in flight carries ordering the shortcut would jump
	// (an EvictM whose data must land before a re-read, an EvictS that
	// must clear the sharer bit before it is re-added). Incremented by
	// the sending contexts, decremented by the server after dispatch.
	selfInflight atomic.Int64

	// localGrant is the core context's line buffer for shortcut grants.
	localGrant []byte

	// Statistics — core domain, written lock-free by the core context.
	// Home-side counters live in the shards and DRAM counters under
	// dramMu; Stats() aggregates all three.
	st stats.Tile

	// Payload scratch buffers: an encoded payload lives only until the
	// next Send (which copies it into the wire frame), so each sending
	// context recycles one buffer. coreScratch belongs to the core
	// context; srvScratch and grantBuf belong to the server goroutine.
	coreScratch []byte
	srvScratch  []byte
	grantBuf    []byte

	// coreArena carves wire frames for the core context's immediate sends
	// (the server's batch has its own arena inside network.Batch).
	coreArena network.FrameArena

	// fetchBuf backs instruction fetches: the fetched bytes are consumed
	// before Fetch returns and the core context issues one access at a
	// time, so one buffer per node replaces a per-fetch allocation (the
	// same argument as Thread.scratch).
	fetchBuf []byte

	// flushMeta is FlushAll's reusable victim list.
	flushMeta []flushVictim

	// ctrlQ holds control functions (checkpoint capture/restore) queued
	// by EnqueueCtrl for the server goroutine to run on the next msgCkpt
	// packet, serialized with dispatch like any other message.
	ctrlMu sync.Mutex
	ctrlQ  []func()

	lineBits uint
	lineSize int

	stopped chan struct{}
}

type flushVictim struct {
	addr  cache.LineAddr
	state cache.State
}

// NewNode builds the memory subsystem of one tile. progress feeds the DRAM
// queue model; net must be the tile's network interface.
func NewNode(tile arch.TileID, cfg *config.Config, net *network.Net, progress *clock.ProgressWindow) *Node {
	nshards := cfg.Coherence.DirShards
	if nshards == 0 {
		nshards = defaultDirShards
	}
	n := &Node{
		tile:         tile,
		cfg:          cfg,
		net:          net,
		shards:       make([]dirShard, nshards),
		shardMask:    uint64(nshards - 1),
		dram:         dram.New(cfg, progress),
		out:          net.NewBatch(),
		everAccessed: make(map[cache.LineAddr]struct{}),
		invalidated:  make(map[cache.LineAddr]struct{}),
		wbDrained:    make(chan struct{}, 1),
		reqDone:      make(chan network.Packet, 1),
		lineSize:     cfg.LineSize(),
		stopped:      make(chan struct{}),
	}
	n.grantBuf = make([]byte, n.lineSize)
	n.fetchBuf = make([]byte, n.lineSize)
	n.localGrant = make([]byte, n.lineSize)
	for i := range n.shards {
		n.shards[i].lines = make(map[cache.LineAddr]*dirLine)
		n.shards[i].store = directory.NewStore(cfg.Coherence, cfg.Tiles, 0)
	}
	n.st.TileID = tile
	if cfg.L1I.Enabled {
		n.l1i = cache.New(cfg.L1I)
	}
	if cfg.L1D.Enabled {
		n.l1d = cache.New(cfg.L1D)
	}
	n.l2 = cache.New(cfg.L2)
	n.lineBits = n.l2.LineBits()
	return n
}

// Tile returns the tile this node belongs to.
func (n *Node) Tile() arch.TileID { return n.tile }

// ReleaseCaches returns the node's cache line arrays to their geometry
// pools. Valid only after the server has stopped (Stopped closed) and no
// core context will access the node again; Stats is invalid afterwards.
func (n *Node) ReleaseCaches() {
	if n.l1i != nil {
		n.l1i.Release()
	}
	if n.l1d != nil {
		n.l1d.Release()
	}
	n.l2.Release()
}

// LineSize returns the coherence line size.
func (n *Node) LineSize() int { return n.lineSize }

func (n *Node) lineOf(a arch.Addr) cache.LineAddr {
	return cache.LineAddr(uint64(a) >> n.lineBits)
}

func (n *Node) homeOf(l cache.LineAddr) arch.TileID {
	return arch.TileID(uint64(l) % uint64(n.cfg.Tiles))
}

// shardFor maps a line homed at this tile to its directory shard. Lines
// are striped across homes (line mod Tiles), so dividing by the tile count
// yields this home's dense per-line index; consecutive local lines land in
// consecutive shards.
func (n *Node) shardFor(l cache.LineAddr) *dirShard {
	return &n.shards[(uint64(l)/uint64(n.cfg.Tiles))&n.shardMask]
}

// coreClaim takes single-writer ownership of the core domain for one
// access. The uncontended case — the overwhelmingly common one — is a
// single CAS on a core-local word; contention means the server is mid-
// intervention on this idle-until-now tile, and the claim waits for it
// under mu.
func (n *Node) coreClaim() {
	if n.coreState.CompareAndSwap(0, stCoreActive) {
		return
	}
	n.claimSlow()
}

func (n *Node) claimSlow() {
	// The word was not free: the server holds it (stSrvBusy, only ever set
	// with mu held). Taking mu waits it out; a stale pending backlog is
	// drained defensively before the claim.
	n.mu.Lock()
	n.drainLocked(false)
	n.coreState.Store(stCoreActive)
	n.mu.Unlock()
}

// coreRelease returns the domain to the free state at the end of an
// access. If the server queued interventions while the access ran (the
// release CAS fails on stPending), the core drains them — in arrival
// order, with immediate replies — before going idle, so intervention
// latency is bounded by one access.
func (n *Node) coreRelease() {
	if n.coreState.CompareAndSwap(stCoreActive, 0) {
		return
	}
	n.mu.Lock()
	n.drainLocked(false)
	n.coreState.Store(0)
	n.mu.Unlock()
}

// drainLocked applies every queued intervention in arrival order. srv
// selects the sending context for replies (server batch vs. immediate
// core send). Called with mu held by whichever context owns the domain.
func (n *Node) drainLocked(srv bool) {
	for i := 0; i < len(n.intvQ); i++ {
		pkt := n.intvQ[i]
		n.intvQ[i] = network.Packet{}
		n.applyIntervention(pkt, srv)
	}
	n.intvQ = n.intvQ[:0]
}

// queueIntervention publishes a home-initiated cache command (Inv/Wb/
// Flush) to the core domain. An idle tile (word free) is served by the
// server on the spot — it claims the word, applies, and releases — so a
// tile whose thread is blocked, napping, computing natively, or long gone
// can never stall the protocol. A tile whose core is mid-access gets the
// command queued in the mailbox, flagged by stPending; the core's release
// CAS observes the flag and drains. Called by the server goroutine only.
func (n *Node) queueIntervention(pkt network.Packet) {
	n.mu.Lock()
	n.intvQ = append(n.intvQ, pkt)
	for {
		s := n.coreState.Load()
		if s == 0 {
			if n.coreState.CompareAndSwap(0, stSrvBusy) {
				n.drainLocked(true)
				n.coreState.Store(0)
				break
			}
			continue // the core just claimed; flag it instead
		}
		if n.coreState.CompareAndSwap(s, s|stPending) {
			break
		}
	}
	n.mu.Unlock()
}

// Stats snapshots the tile's statistics. The core-domain counters are
// read without synchronization, so callers must either be the tile's own
// core context or observe the tile quiesced (thread exited or parked, as
// at collection time); home and DRAM counters take their domain locks.
func (n *Node) Stats() stats.Tile {
	st := n.st
	if n.l1i != nil {
		st.L1IHits, st.L1IMisses = n.l1i.Hits, n.l1i.Misses
	}
	if n.l1d != nil {
		st.L1DHits, st.L1DMisses = n.l1d.Hits, n.l1d.Misses
	}
	st.L2Hits, st.L2Misses = n.l2.Hits, n.l2.Misses
	st.L2Evictions = n.l2.Evictions
	st.L2Writebacks = n.l2.Writebacks
	for i := range n.shards {
		sh := &n.shards[i]
		sh.mu.Lock()
		st.DirRequests += sh.dirRequests
		st.DirTraps += sh.dirTraps
		st.InvSent += sh.invSent
		sh.mu.Unlock()
	}
	n.dramMu.Lock()
	st.DRAMReads, st.DRAMWrites = n.dram.Reads, n.dram.Writes
	st.DRAMQueueWait = n.dram.TotalQueueDelay
	n.dramMu.Unlock()
	ns := n.net.Stats()
	for c := network.Class(0); c < network.NumClasses; c++ {
		st.NetPacketsSent += ns.PacketsSent[c].Load()
		st.NetBytesSent += ns.BytesSent[c].Load()
		st.NetPacketsRecv += ns.PacketsRecv[c].Load()
	}
	return st
}

// send transmits a memory-class packet immediately. It is the core-context
// path (miss requests, drain replies, FlushAll writebacks, peek/poke).
// Sends racing simulation teardown (transport already closed) are dropped
// silently — the receiver is gone; any other transport failure is
// unrecoverable simulator state.
func (n *Node) send(typ uint8, dst arch.TileID, seq uint64, payload []byte, now arch.Cycles) arch.Cycles {
	if dst == n.tile {
		n.selfInflight.Add(1)
	}
	arrival, err := n.net.SendFrom(&n.coreArena, network.ClassMemory, typ, dst, seq, payload, now)
	if err != nil {
		if errors.Is(err, transport.ErrClosed) {
			return now
		}
		panic("memsys: transport send failed: " + err.Error())
	}
	return arrival
}

// sendSrv queues a memory-class packet on the server goroutine's batch;
// Serve flushes it before blocking and before waking the local core, which
// preserves per-sender FIFO against the core context's immediate sends.
// Only the server goroutine may call it.
func (n *Node) sendSrv(typ uint8, dst arch.TileID, seq uint64, payload []byte, now arch.Cycles) arch.Cycles {
	if dst == n.tile {
		n.selfInflight.Add(1)
	}
	return n.out.Send(network.ClassMemory, typ, dst, seq, payload, now)
}

// The enc helpers encode payloads into the owning context's scratch
// buffer; the result is valid until that context's next encode or send.
func (n *Node) srvEncLine(line uint64) []byte {
	n.srvScratch = encodeLine(n.srvScratch, line)
	return n.srvScratch
}

func (n *Node) srvEncData(p dataPayload) []byte {
	n.srvScratch = encodeData(n.srvScratch, p)
	return n.srvScratch
}

func (n *Node) srvEncPeek(p peekPayload) []byte {
	n.srvScratch = encodePeek(n.srvScratch, p)
	return n.srvScratch
}

func (n *Node) coreEncReq(p reqPayload) []byte {
	n.coreScratch = encodeReq(n.coreScratch, p)
	return n.coreScratch
}

func (n *Node) coreEncLine(line uint64) []byte {
	n.coreScratch = encodeLine(n.coreScratch, line)
	return n.coreScratch
}

func (n *Node) coreEncData(p dataPayload) []byte {
	n.coreScratch = encodeData(n.coreScratch, p)
	return n.coreScratch
}

func (n *Node) coreEncPeek(p peekPayload) []byte {
	n.coreScratch = encodePeek(n.coreScratch, p)
	return n.coreScratch
}

// dramRead and dramWrite serialize home-shard access to the shared DRAM
// controller.
func (n *Node) dramRead(line uint64, buf []byte, now arch.Cycles) arch.Cycles {
	n.dramMu.Lock()
	defer n.dramMu.Unlock()
	return n.dram.ReadLine(line, buf, now)
}

func (n *Node) dramWrite(line uint64, data []byte, now arch.Cycles) {
	n.dramMu.Lock()
	defer n.dramMu.Unlock()
	n.dram.WriteLine(line, data, now)
}
