package memsys

import (
	"repro/internal/arch"
	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/network"
)

// AccessResult reports the modeled timing of one memory reference.
type AccessResult struct {
	// Latency is the end-to-end modeled latency in cycles.
	Latency arch.Cycles
	// L2Misses counts line segments that left the tile.
	L2Misses int
}

// Read performs an application load of len(buf) bytes at addr, filling buf
// with the loaded data. now is the core's current clock. The call blocks
// until the coherence protocol delivers the data.
func (n *Node) Read(addr arch.Addr, buf []byte, now arch.Cycles) AccessResult {
	return n.access(addr, buf, false, false, now)
}

// Write performs an application store of buf at addr.
func (n *Node) Write(addr arch.Addr, buf []byte, now arch.Cycles) AccessResult {
	return n.access(addr, buf, true, false, now)
}

// Fetch models an instruction fetch of nbytes at pc through the L1I. The
// fetched bytes land in a per-node scratch buffer (their values are not
// returned): the access blocks for its duration and the core context
// issues one access at a time, so the buffer is reused across fetches.
func (n *Node) Fetch(pc arch.Addr, nbytes int, now arch.Cycles) AccessResult {
	if cap(n.fetchBuf) < nbytes {
		n.fetchBuf = make([]byte, nbytes)
	}
	return n.access(pc, n.fetchBuf[:nbytes], false, true, now)
}

// access performs a reference. Accesses contained in one cache line — all
// of the fixed-width Load64/Store64/Load32/Store32 helpers and every
// aligned instruction fetch — skip the segment-split loop entirely;
// straddling references split into per-line segments.
//
//graphite:hotpath
func (n *Node) access(addr arch.Addr, buf []byte, isWrite, ifetch bool, now arch.Cycles) AccessResult {
	if int(uint64(addr)&(uint64(n.lineSize)-1))+len(buf) <= n.lineSize {
		return n.accessLine(addr, buf, isWrite, ifetch, now)
	}
	var res AccessResult
	off := 0
	for off < len(buf) {
		lineStart := int(uint64(addr+arch.Addr(off)) & (uint64(n.lineSize) - 1))
		seg := n.lineSize - lineStart
		if seg > len(buf)-off {
			seg = len(buf) - off
		}
		r := n.accessLine(addr+arch.Addr(off), buf[off:off+seg], isWrite, ifetch, now+res.Latency)
		res.Latency += r.Latency
		res.L2Misses += r.L2Misses
		off += seg
	}
	return res
}

// accessLine performs one within-line reference. The hit path is
// lock-free: one claim CAS and one release CAS on the tile-local
// ownership word are the entire synchronization cost of an L1 or L2 hit —
// no mutex, no shared-state round trip with the server goroutine. Misses
// additionally take mu to stage the outstanding request and to hand the
// domain over for the blocking wait.
//
//graphite:hotpath
func (n *Node) accessLine(addr arch.Addr, seg []byte, isWrite, ifetch bool, now arch.Cycles) AccessResult {
	n.coreClaim()
	res := n.accessOwned(addr, seg, isWrite, ifetch, now)
	n.coreRelease()
	return res
}

// accessOwned is accessLine's body, running with the core domain claimed.
//
//graphite:hotpath
func (n *Node) accessOwned(addr arch.Addr, seg []byte, isWrite, ifetch bool, now arch.Cycles) AccessResult {
	line := n.lineOf(addr)
	off := int(uint64(addr) & (uint64(n.lineSize) - 1))

	if !isWrite {
		if !ifetch {
			n.st.Loads++
		}
		// Loads: L1 first.
		l1 := n.l1d
		if ifetch {
			l1 = n.l1i
		}
		if l1 != nil {
			if ln, ok := l1.Lookup(line); ok {
				copy(seg, ln.Data()[off:off+len(seg)])
				return AccessResult{Latency: l1.HitLatency()}
			}
		}
		// L1 miss (or no L1): L2.
		if ln, ok := n.l2.Lookup(line); ok {
			copy(seg, ln.Data()[off:off+len(seg)])
			lat := n.l2.HitLatency()
			if l1 != nil {
				lat += l1.HitLatency()
				l1.Insert(line, cache.Shared, ln.Data()) // silent L1 fill
			}
			return AccessResult{Latency: lat}
		}
		// L2 miss: fetch a Shared copy from home.
		return n.miss(line, off, seg, false, ifetch, now)
	}

	// Stores: need Modified at L2 (write-through L1).
	n.st.Stores++
	if ln, ok := n.l2.Lookup(line); ok {
		if ln.State() == cache.Modified {
			n.applyWrite(ln, line, off, seg, cache.WordMask(off, len(seg), n.lineSize))
			return AccessResult{Latency: n.l2.HitLatency()}
		}
		// Shared: upgrade.
		return n.miss(line, off, seg, true, false, now)
	}
	// Write miss.
	return n.miss(line, off, seg, true, false, now)
}

// miss issues the coherence request, releases the core domain for the
// blocking wait, and applies the reply in the core context on wake.
// Queued interventions are drained before the request leaves the tile, so
// the home observes our reply to any earlier intervention before our
// request (the ordering argument of DESIGN.md §13).
func (n *Node) miss(line cache.LineAddr, off int, seg []byte, isWrite, ifetch bool, now arch.Cycles) AccessResult {
	mask := cache.WordMask(off, len(seg), n.lineSize)

	n.mu.Lock()
	n.drainLocked(false)
	if n.pending != nil {
		n.mu.Unlock()
		panic("memsys: concurrent outstanding requests on one tile")
	}
	lookup := n.l2.HitLatency() // tag lookup before going off-tile
	if !isWrite && !ifetch && n.l1d != nil {
		lookup += n.l1d.HitLatency()
	}
	if ifetch && n.l1i != nil {
		lookup += n.l1i.HitLatency()
	}
	sendAt := now + lookup

	if n.homeOf(line) == n.tile {
		if res, ok := n.localMiss(line, off, seg, mask, isWrite, ifetch, now, sendAt, lookup); ok {
			n.mu.Unlock()
			return res
		}
	}

	n.seq++
	// Reuse the tile's single request slot and completion channel: the
	// previous request fully completed (pending was nil) and the core
	// context drained reqDone before issuing this access.
	pr := &n.reqSlot
	*pr = pendingReq{
		seq:     n.seq,
		line:    line,
		isWrite: isWrite,
		ifetch:  ifetch,
		off:     off,
		mask:    mask,
		sentAt:  sendAt,
		done:    n.reqDone,
	}
	req := reqPayload{line: uint64(line), mask: mask}
	typ := msgShReq
	if isWrite {
		typ = msgExReq
		pr.wbuf = seg
		if ln, ok := n.l2.Peek(line); ok && ln.State() == cache.Shared {
			req.flags |= flagUpgrade
		}
	} else {
		pr.rbuf = seg
		if ifetch {
			req.flags |= flagIFetch
		}
	}
	n.pending = pr
	// Release the core domain for the blocking wait: the server must be
	// able to answer interventions against our caches while we sleep. The
	// server returns ownership at completion hand-off (re-marking the word
	// stCoreActive under mu) before the reply is delivered on pr.done, so
	// interventions arriving after the grant queue behind our install.
	n.coreState.Store(0)
	home := n.homeOf(line)
	n.send(typ, home, pr.seq, n.coreEncReq(req), sendAt)
	n.mu.Unlock()

	pkt, ok := <-pr.done
	if !ok {
		// Teardown while blocked: the server exited without the completion
		// hand-off, so the staged request is still in the slot — clear it,
		// or a thread that keeps running into more accesses would trip the
		// concurrent-outstanding-requests check on a phantom request. Then
		// re-mark the word owned (the enclosing accessLine releases it) and
		// report the lookup cost only.
		n.mu.Lock()
		if n.pending == pr {
			n.pending = nil
		}
		n.mu.Unlock()
		n.coreState.Store(stCoreActive)
		return AccessResult{Latency: lookup, L2Misses: 1}
	}
	// The hand-off re-granted ownership before the channel send (which
	// publishes the server's writes): the core context owns the domain
	// again and applies the completion lock-free.
	info := n.finishMiss(pr, pkt)
	lat := info.arrival - now
	if lat < lookup {
		lat = lookup
	}
	// Fill/install cost at the end of the miss.
	lat += n.l2.HitLatency()
	return AccessResult{Latency: lat, L2Misses: 1}
}

// missInfo is finishMiss's summary of a completed miss.
type missInfo struct {
	arrival arch.Cycles
}

// grantInfo is one coherence grant as the core context applies it,
// whether it arrived as a reply packet or was produced by the local-home
// shortcut.
type grantInfo struct {
	typ     uint8 // msgShRep, msgExRep, or msgUpgRep
	writer  arch.TileID
	wmask   uint64
	data    []byte
	arrival arch.Cycles
	sentAt  arch.Cycles
}

// finishMiss applies a completion reply in the core context. It runs
// lock-free — ownership of the core domain returned with the hand-off.
func (n *Node) finishMiss(pr *pendingReq, pkt network.Packet) missInfo {
	p, err := decodeData(pkt.Payload)
	if err != nil {
		panic("memsys: " + err.Error())
	}
	seg := pr.rbuf
	if pr.isWrite {
		seg = pr.wbuf
	}
	n.applyGrant(pr.line, pr.off, seg, pr.mask, pr.isWrite, pr.ifetch, grantInfo{
		typ:     pkt.Type,
		writer:  p.writer,
		wmask:   p.mask,
		data:    p.data,
		arrival: pkt.Time,
		sentAt:  pr.sentAt,
	})
	return missInfo{arrival: pkt.Time}
}

// applyGrant installs a granted line, performs the pending operation,
// classifies the miss, and updates the core-owned statistics.
func (n *Node) applyGrant(line cache.LineAddr, off int, seg []byte, mask uint64, isWrite, ifetch bool, g grantInfo) {
	switch g.typ {
	case msgUpgRep:
		ln, ok := n.l2.Peek(line)
		if !ok {
			// Home serializes per line: nothing can invalidate our copy
			// between the upgrade grant and its arrival (an invalidation
			// racing the upgrade demotes it to a full ExRep instead).
			panic("memsys: upgrade grant for absent line")
		}
		ln.SetState(cache.Modified)
		n.applyWrite(ln, line, off, seg, mask)
		n.st.Upgrades++
	case msgShRep, msgExRep:
		st := cache.Shared
		if g.typ == msgExRep {
			st = cache.Modified
		}
		if victim, evicted := n.l2.Insert(line, st, g.data); evicted {
			n.processVictim(victim, g.arrival)
		}
		ln, _ := n.l2.Peek(line)
		if isWrite {
			n.applyWrite(ln, line, off, seg, mask)
		} else {
			copy(seg, ln.Data()[off:off+len(seg)])
			n.fillL1(line, ifetch, ln.Data())
		}
		if ifetch {
			n.st.IFetchMisses++
		} else {
			kind := n.classify(line, mask, g.writer, g.wmask)
			n.st.MissBy[kind]++
			lat := g.arrival - g.sentAt
			if lat < 0 {
				lat = 0
			}
			n.st.MemLatencyTotal += lat
			n.st.MemAccesses++
		}
		delete(n.invalidated, line)
		n.everAccessed[line] = struct{}{}
	default:
		panic("memsys: unexpected completion " + msgName(g.typ))
	}
}

// localMiss is the local-home shortcut: when this tile is the line's home
// and the transaction needs nothing from other tiles, the directory is
// consulted and the grant produced inline — no loopback messages, no
// server round trip, no wake — while charging exactly the modeled timing
// the messaged loopback would have had (request and reply delays, the
// directory latency, the DRAM access) and feeding the same timestamps to
// the progress window. ok is false when the messaged path must run
// instead:
//
//   - a self-directed message is still in flight (its ordering — an
//     EvictM's data landing, an EvictS clearing a sharer bit — must not
//     be jumped);
//   - the line has an open transaction, a Modified owner, or (for
//     writes) foreign sharers to invalidate;
//   - the directory is not the full-map kind (limited directories may
//     evict pointers or trap on Add, which needs the full state machine).
//
// Called with mu held by the core context; takes the line's shard lock
// (mu → shard nests only here and never in reverse).
func (n *Node) localMiss(line cache.LineAddr, off int, seg []byte, mask uint64, isWrite, ifetch bool, now, sendAt, lookup arch.Cycles) (AccessResult, bool) {
	if n.selfInflight.Load() != 0 || n.cfg.Coherence.Kind != config.FullMap {
		return AccessResult{}, false
	}
	sh := n.shardFor(line)
	sh.mu.Lock()
	dl := sh.dirLineOf(n, line)
	e := dl.entry
	if dl.busy != nil || e.Owner() != arch.InvalidTile {
		sh.mu.Unlock()
		return AccessResult{}, false
	}
	upgrade := false
	if isWrite {
		foreign := false
		e.ForEachSharer(func(s arch.TileID) {
			if s != n.tile {
				foreign = true
			}
		})
		if foreign {
			sh.mu.Unlock()
			return AccessResult{}, false
		}
		if ln, ok := n.l2.Peek(line); ok && ln.State() == cache.Shared {
			upgrade = e.ContainsSharer(n.tile)
		}
	}

	// From here the transaction completes locally. Replicate the messaged
	// loopback timing: request delay, directory latency, DRAM, reply
	// delay — and the progress-window samples the two deliveries would
	// have contributed.
	sh.dirRequests++
	reqArr := sendAt + n.net.Delay(network.ClassMemory, n.tile, reqPayloadLen, sendAt)
	n.net.Observe(reqArr)
	t := reqArr + n.cfg.Coherence.DirLatency
	writer, wmask := e.LastWriter(), e.LastWriterMask()

	g := grantInfo{writer: writer, wmask: wmask, sentAt: sendAt}
	repLen := dataPayloadLen
	if !isWrite {
		e.AddSharer(n.tile) // full map: never evicts, never traps
		t += n.dramRead(uint64(line), n.localGrant, t)
		g.typ = msgShRep
		g.data = n.localGrant
		repLen += n.lineSize
	} else {
		e.ClearSharers()
		e.SetLastWriter(n.tile)
		e.SetLastWriterMask(mask)
		if upgrade {
			g.typ = msgUpgRep
		} else {
			t += n.dramRead(uint64(line), n.localGrant, t)
			g.typ = msgExRep
			g.data = n.localGrant
			repLen += n.lineSize
		}
		e.SetOwner(n.tile)
	}
	repArr := t + n.net.Delay(network.ClassMemory, n.tile, repLen, t)
	n.net.Observe(repArr)
	sh.mu.Unlock()

	g.arrival = repArr
	n.applyGrant(line, off, seg, mask, isWrite, ifetch, g)
	lat := repArr - now
	if lat < lookup {
		lat = lookup
	}
	lat += n.l2.HitLatency()
	return AccessResult{Latency: lat, L2Misses: 1}, true
}

// FlushAll writes back every Modified line and drops all cached state,
// then waits until every writeback has been applied at its home. It is
// called at simulation end so that Peek observes final memory contents
// (and, like everything else here, it exercises the protocol itself).
// FlushAll runs in the core context; holding mu throughout excludes the
// server's domain claims (which also run under mu), so the ownership word
// itself need not change hands.
func (n *Node) FlushAll(now arch.Cycles) {
	n.mu.Lock()
	n.drainLocked(false)
	// Collect victims first (ForEach forbids mutation during the visit),
	// then write back and invalidate line by line. The line data is
	// encoded straight out of cache storage — the wire frame copies it —
	// so no per-line clone is needed.
	n.flushMeta = n.flushMeta[:0]
	n.l2.ForEach(func(l cache.Line) {
		n.flushMeta = append(n.flushMeta, flushVictim{addr: l.Addr(), state: l.State()})
	})
	for _, v := range n.flushMeta {
		home := n.homeOf(v.addr)
		if v.state == cache.Modified {
			ln, _ := n.l2.Peek(v.addr)
			vic := cache.Victim{Addr: v.addr, State: v.state, WriteMask: ln.WriteMask(), Data: ln.Data()}
			if home != n.tile || !n.localEvict(vic, now) {
				n.outstandingWB.Add(1)
				pay := dataPayload{line: uint64(v.addr), mask: ln.WriteMask(), writer: n.tile, flags: flagHasData, data: ln.Data()}
				n.send(msgEvictM, home, 0, n.coreEncData(pay), now)
			}
		} else {
			if home != n.tile || !n.localEvict(cache.Victim{Addr: v.addr, State: v.state}, now) {
				n.send(msgEvictS, home, 0, n.coreEncLine(uint64(v.addr)), now)
			}
		}
		n.l2.Invalidate(v.addr)
		n.invL1(v.addr)
	}
	n.mu.Unlock()

	for n.outstandingWB.Load() > 0 {
		select {
		case <-n.wbDrained:
		case <-n.stopped:
			return
		}
	}
}

// Peek reads len(buf) bytes functionally (no timing, no caching) from the
// simulated address space. Valid only pre-run or post-FlushAll.
func (n *Node) Peek(addr arch.Addr, buf []byte) {
	off := 0
	for off < len(buf) {
		lineStart := int(uint64(addr+arch.Addr(off)) & (uint64(n.lineSize) - 1))
		seg := n.lineSize - lineStart
		if seg > len(buf)-off {
			seg = len(buf) - off
		}
		n.peekLine(addr+arch.Addr(off), buf[off:off+seg])
		off += seg
	}
}

// Poke writes buf functionally into the simulated address space. Valid
// only pre-run or post-FlushAll.
func (n *Node) Poke(addr arch.Addr, buf []byte) {
	off := 0
	for off < len(buf) {
		lineStart := int(uint64(addr+arch.Addr(off)) & (uint64(n.lineSize) - 1))
		seg := n.lineSize - lineStart
		if seg > len(buf)-off {
			seg = len(buf) - off
		}
		n.pokeLine(addr+arch.Addr(off), buf[off:off+seg])
		off += seg
	}
}

// peekLine and pokeLine block on the pending-request slot like a miss but
// never touch the caches, so they do not transfer core-domain ownership:
// a parked tile stays parked and a running one keeps its claim.
func (n *Node) peekLine(addr arch.Addr, buf []byte) {
	n.mu.Lock()
	if n.pending != nil {
		n.mu.Unlock()
		panic("memsys: Peek with outstanding request")
	}
	n.seq++
	pr := &n.reqSlot
	*pr = pendingReq{seq: n.seq, peek: true, done: n.reqDone}
	n.pending = pr
	home := n.homeOf(n.lineOf(addr))
	n.send(msgPeek, home, pr.seq, n.coreEncPeek(peekPayload{addr: addr, n: uint32(len(buf))}), 0)
	n.mu.Unlock()
	pkt, ok := <-pr.done
	if !ok {
		// Teardown: clear the staged request (see the miss path).
		n.mu.Lock()
		if n.pending == pr {
			n.pending = nil
		}
		n.mu.Unlock()
		return
	}
	p, err := decodePeek(pkt.Payload)
	if err != nil {
		panic("memsys: " + err.Error())
	}
	copy(buf, p.data)
}

func (n *Node) pokeLine(addr arch.Addr, buf []byte) {
	n.mu.Lock()
	if n.pending != nil {
		n.mu.Unlock()
		panic("memsys: Poke with outstanding request")
	}
	n.seq++
	pr := &n.reqSlot
	*pr = pendingReq{seq: n.seq, poke: true, done: n.reqDone}
	n.pending = pr
	home := n.homeOf(n.lineOf(addr))
	n.send(msgPoke, home, pr.seq, n.coreEncPeek(peekPayload{addr: addr, n: uint32(len(buf)), data: buf}), 0)
	n.mu.Unlock()
	if _, ok := <-pr.done; !ok {
		// Teardown: clear the staged request (see the miss path).
		n.mu.Lock()
		if n.pending == pr {
			n.pending = nil
		}
		n.mu.Unlock()
	}
}

// AddSyncWait credits stall cycles to the tile's stat record. Core context
// only (the counters are core-owned).
func (n *Node) AddSyncWait(c arch.Cycles) {
	n.st.SyncWaitCycles += c
}

// SetFinal records the tile's final clock and core-model counters into the
// stats record before collection. Core context only.
func (n *Node) SetFinal(cycles arch.Cycles, instructions, branches, mispredicts uint64, compute, memStall arch.Cycles) {
	n.st.Cycles = cycles
	n.st.Instructions = instructions
	n.st.Branches = branches
	n.st.BranchMispredict = mispredicts
	n.st.ComputeCycles = compute
	n.st.MemStallCycles = memStall
}
