package memsys

import (
	"repro/internal/arch"
	"repro/internal/cache"
)

// AccessResult reports the modeled timing of one memory reference.
type AccessResult struct {
	// Latency is the end-to-end modeled latency in cycles.
	Latency arch.Cycles
	// L2Misses counts line segments that left the tile.
	L2Misses int
}

// Read performs an application load of len(buf) bytes at addr, filling buf
// with the loaded data. now is the core's current clock. The call blocks
// until the coherence protocol delivers the data.
func (n *Node) Read(addr arch.Addr, buf []byte, now arch.Cycles) AccessResult {
	return n.access(addr, buf, false, false, now)
}

// Write performs an application store of buf at addr.
func (n *Node) Write(addr arch.Addr, buf []byte, now arch.Cycles) AccessResult {
	return n.access(addr, buf, true, false, now)
}

// Fetch models an instruction fetch of n bytes at pc through the L1I.
func (n *Node) Fetch(pc arch.Addr, nbytes int, now arch.Cycles) AccessResult {
	buf := make([]byte, nbytes)
	return n.access(pc, buf, false, true, now)
}

// access splits a reference into per-line segments and performs each.
func (n *Node) access(addr arch.Addr, buf []byte, isWrite, ifetch bool, now arch.Cycles) AccessResult {
	var res AccessResult
	off := 0
	for off < len(buf) {
		lineStart := int(uint64(addr+arch.Addr(off)) & (uint64(n.lineSize) - 1))
		seg := n.lineSize - lineStart
		if seg > len(buf)-off {
			seg = len(buf) - off
		}
		r := n.accessLine(addr+arch.Addr(off), buf[off:off+seg], isWrite, ifetch, now+res.Latency)
		res.Latency += r.Latency
		res.L2Misses += r.L2Misses
		off += seg
	}
	return res
}

// accessLine performs one within-line reference.
func (n *Node) accessLine(addr arch.Addr, seg []byte, isWrite, ifetch bool, now arch.Cycles) AccessResult {
	line := n.lineOf(addr)
	off := int(uint64(addr) & (uint64(n.lineSize) - 1))
	mask := cache.WordMask(off, len(seg), n.lineSize)

	n.mu.Lock()
	if isWrite {
		n.st.Stores++
	} else if !ifetch {
		n.st.Loads++
	}

	if !isWrite {
		// Loads: L1 first.
		l1 := n.l1d
		if ifetch {
			l1 = n.l1i
		}
		if l1 != nil {
			if ln := l1.Lookup(line); ln != nil {
				copy(seg, ln.Data[off:off+len(seg)])
				lat := l1.HitLatency()
				n.mu.Unlock()
				return AccessResult{Latency: lat}
			}
		}
		// L1 miss (or no L1): L2.
		if ln := n.l2.Lookup(line); ln != nil {
			copy(seg, ln.Data[off:off+len(seg)])
			lat := n.l2.HitLatency()
			if l1 != nil {
				lat += l1.HitLatency()
				l1.Insert(line, cache.Shared, ln.Data) // silent L1 fill
			}
			n.mu.Unlock()
			return AccessResult{Latency: lat}
		}
		// L2 miss: fetch a Shared copy from home.
		return n.miss(line, off, seg, mask, false, ifetch, now)
	}

	// Stores: need Modified at L2 (write-through L1).
	if ln := n.l2.Lookup(line); ln != nil {
		if ln.State == cache.Modified {
			pr := &pendingReq{line: line, off: off, wbuf: seg, mask: mask}
			n.applyWrite(ln, pr)
			lat := n.l2.HitLatency()
			n.mu.Unlock()
			return AccessResult{Latency: lat}
		}
		// Shared: upgrade.
		return n.miss(line, off, seg, mask, true, false, now)
	}
	// Write miss.
	return n.miss(line, off, seg, mask, true, false, now)
}

// miss issues the coherence request and blocks for completion. Called with
// n.mu held; it unlocks before blocking.
func (n *Node) miss(line cache.LineAddr, off int, seg []byte, mask uint64, isWrite, ifetch bool, now arch.Cycles) AccessResult {
	if n.pending != nil {
		n.mu.Unlock()
		panic("memsys: concurrent outstanding requests on one tile")
	}
	lookup := n.l2.HitLatency() // tag lookup before going off-tile
	if !isWrite && !ifetch && n.l1d != nil {
		lookup += n.l1d.HitLatency()
	}
	if ifetch && n.l1i != nil {
		lookup += n.l1i.HitLatency()
	}
	sendAt := now + lookup

	n.seq++
	// Reuse the tile's single request slot and completion channel: the
	// previous request fully completed (pending was nil) and the core
	// thread drained reqDone before issuing this access.
	pr := &n.reqSlot
	*pr = pendingReq{
		seq:     n.seq,
		line:    line,
		isWrite: isWrite,
		ifetch:  ifetch,
		off:     off,
		mask:    mask,
		sentAt:  sendAt,
		done:    n.reqDone,
	}
	req := reqPayload{line: uint64(line), mask: mask}
	typ := msgShReq
	if isWrite {
		typ = msgExReq
		pr.wbuf = seg
		if ln := n.l2.Peek(line); ln != nil && ln.State == cache.Shared {
			req.flags |= flagUpgrade
		}
	} else {
		pr.rbuf = seg
		if ifetch {
			req.flags |= flagIFetch
		}
	}
	n.pending = pr
	home := n.homeOf(line)
	n.send(typ, home, pr.seq, n.coreEncReq(req), sendAt)
	n.mu.Unlock()

	info := <-pr.done
	lat := info.arrival - now
	if lat < lookup {
		lat = lookup
	}
	// Fill/install cost at the end of the miss.
	lat += n.l2.HitLatency()
	return AccessResult{Latency: lat, L2Misses: 1}
}

// FlushAll writes back every Modified line and drops all cached state,
// then waits until every writeback has been applied at its home. It is
// called at simulation end so that Peek observes final memory contents
// (and, like everything else here, it exercises the protocol itself).
func (n *Node) FlushAll(now arch.Cycles) {
	n.mu.Lock()
	type victimCopy struct {
		addr  cache.LineAddr
		state cache.State
		mask  uint64
		data  []byte
	}
	var lines []victimCopy
	n.l2.ForEach(func(l *cache.Line) {
		lines = append(lines, victimCopy{addr: l.Addr, state: l.State, mask: l.WriteMask, data: cloneBytes(l.Data)})
	})
	for _, v := range lines {
		n.l2.Invalidate(v.addr)
		n.invL1(v.addr)
		home := n.homeOf(v.addr)
		if v.state == cache.Modified {
			n.outstandingWB.Add(1)
			pay := dataPayload{line: uint64(v.addr), mask: v.mask, writer: n.tile, flags: flagHasData, data: v.data}
			n.send(msgEvictM, home, 0, n.coreEncData(pay), now)
		} else {
			n.send(msgEvictS, home, 0, n.coreEncLine(uint64(v.addr)), now)
		}
	}
	n.mu.Unlock()

	for n.outstandingWB.Load() > 0 {
		select {
		case <-n.wbDrained:
		case <-n.stopped:
			return
		}
	}
}

// Peek reads len(buf) bytes functionally (no timing, no caching) from the
// simulated address space. Valid only pre-run or post-FlushAll.
func (n *Node) Peek(addr arch.Addr, buf []byte) {
	off := 0
	for off < len(buf) {
		lineStart := int(uint64(addr+arch.Addr(off)) & (uint64(n.lineSize) - 1))
		seg := n.lineSize - lineStart
		if seg > len(buf)-off {
			seg = len(buf) - off
		}
		n.peekLine(addr+arch.Addr(off), buf[off:off+seg])
		off += seg
	}
}

// Poke writes buf functionally into the simulated address space. Valid
// only pre-run or post-FlushAll.
func (n *Node) Poke(addr arch.Addr, buf []byte) {
	off := 0
	for off < len(buf) {
		lineStart := int(uint64(addr+arch.Addr(off)) & (uint64(n.lineSize) - 1))
		seg := n.lineSize - lineStart
		if seg > len(buf)-off {
			seg = len(buf) - off
		}
		n.pokeLine(addr+arch.Addr(off), buf[off:off+seg])
		off += seg
	}
}

func (n *Node) peekLine(addr arch.Addr, buf []byte) {
	n.mu.Lock()
	if n.pending != nil {
		n.mu.Unlock()
		panic("memsys: Peek with outstanding request")
	}
	n.seq++
	pr := &n.reqSlot
	*pr = pendingReq{seq: n.seq, peek: true, done: n.reqDone}
	n.pending = pr
	home := n.homeOf(n.lineOf(addr))
	n.send(msgPeek, home, pr.seq, n.coreEncPeek(peekPayload{addr: addr, n: uint32(len(buf))}), 0)
	n.mu.Unlock()
	info := <-pr.done
	copy(buf, info.data)
}

func (n *Node) pokeLine(addr arch.Addr, buf []byte) {
	n.mu.Lock()
	if n.pending != nil {
		n.mu.Unlock()
		panic("memsys: Poke with outstanding request")
	}
	n.seq++
	pr := &n.reqSlot
	*pr = pendingReq{seq: n.seq, poke: true, done: n.reqDone}
	n.pending = pr
	home := n.homeOf(n.lineOf(addr))
	n.send(msgPoke, home, pr.seq, n.coreEncPeek(peekPayload{addr: addr, n: uint32(len(buf)), data: buf}), 0)
	n.mu.Unlock()
	<-pr.done
}

// AddClock lets callers credit stall cycles to the tile's stat record.
func (n *Node) AddSyncWait(c arch.Cycles) {
	n.mu.Lock()
	n.st.SyncWaitCycles += c
	n.mu.Unlock()
}

// SetFinal records the tile's final clock and core-model counters into the
// stats record before collection.
func (n *Node) SetFinal(cycles arch.Cycles, instructions, branches, mispredicts uint64, compute, memStall arch.Cycles) {
	n.mu.Lock()
	n.st.Cycles = cycles
	n.st.Instructions = instructions
	n.st.Branches = branches
	n.st.BranchMispredict = mispredicts
	n.st.ComputeCycles = compute
	n.st.MemStallCycles = memStall
	n.mu.Unlock()
}
