// Package memsys implements the memory subsystem of a Graphite tile
// (paper §3.2): the private L1 instruction/data caches and private L2, the
// distributed directory (one shard per tile, lines striped across homes),
// the per-tile DRAM controller, and the directory-based MSI coherence
// protocol that ties them together over the memory network.
//
// Following the paper, the functional and modeled roles are unified: cache
// lines and DRAM backing stores carry the application's real data, and
// every load or store is served through the protocol. A simulation that
// completes with correct program output therefore validates the protocol.
//
// Concurrency model. Each tile runs one memory server goroutine (Serve)
// that processes all memory-class packets addressed to the tile — its
// home/directory role, coherence commands against its caches, and replies
// completing its core's outstanding miss. The tile's core context issues
// at most one outstanding request at a time (one app thread per tile).
//
// The caches are a single-writer domain guarded by a biased ownership
// word (Node.coreState), not a mutex: the core context claims the word
// with one CAS per access and releases it with another, and the hot path
// — an L1/L2 hit — runs with zero locks between those two operations.
// Home-initiated interventions (Inv/Wb/Flush) never touch the caches from
// the server goroutine while the core holds the word: they are published
// through an intervention mailbox plus a pending bit that the core's
// release observes and drains. When the word is free — the tile's thread
// is blocked on its own miss, in a control-plane RPC, computing natively,
// or long exited — the server claims the word itself and applies the
// intervention on the spot, so a quiet tile can never stall the protocol.
// Miss completions transfer ownership back: the server matches the reply,
// re-marks the word owned, and the woken core installs the line itself.
// The full ownership and ordering argument lives in DESIGN.md §13.
//
// The home directory is sharded by line region with a mutex per shard, so
// directory traffic does not contend with the tile's own core. The
// server's outgoing messages are batched per destination and flushed
// before the server blocks or wakes its core, which preserves the
// per-sender-FIFO orderings the protocol relies on (see the race analysis
// in DESIGN.md).
package memsys

import (
	"encoding/binary"
	"fmt"

	"repro/internal/arch"
)

// Memory protocol message types (network.Packet.Type within ClassMemory).
const (
	// Requester -> home.
	msgShReq  uint8 = iota // read miss: request Shared copy
	msgExReq               // write miss or upgrade: request Modified
	msgEvictS              // notify eviction of a Shared line
	msgEvictM              // writeback eviction of a Modified line
	msgPeek                // functional read (pre-run/post-flush only)
	msgPoke                // functional write (pre-run/post-flush only)

	// Home -> cache controller.
	msgInvReq   // invalidate a Shared copy
	msgWbReq    // downgrade Modified to Shared, send data home
	msgFlushReq // invalidate Modified copy, send data home

	// Cache controller -> home.
	msgInvRep
	msgWbRep
	msgFlushRep

	// Home -> requester.
	msgShRep
	msgExRep
	msgUpgRep // exclusive grant without data (requester kept its S copy)

	// Home -> evicting tile / peeker.
	msgEvictAck
	msgPeekRep
	msgPokeAck

	// Control plane -> server: run the queued control functions (see
	// EnqueueCtrl in snapshot.go). Sent from a control endpoint, never
	// tile-to-tile, so it cannot perturb selfInflight accounting.
	msgCkpt
)

func msgName(t uint8) string {
	names := []string{"ShReq", "ExReq", "EvictS", "EvictM", "Peek", "Poke",
		"InvReq", "WbReq", "FlushReq", "InvRep", "WbRep", "FlushRep",
		"ShRep", "ExRep", "UpgRep", "EvictAck", "PeekRep", "PokeAck", "Ckpt"}
	if int(t) < len(names) {
		return names[t]
	}
	return fmt.Sprintf("msg(%d)", t)
}

// Payload flag bits.
const (
	flagUpgrade    uint8 = 1 << 0 // ExReq: requester holds a Shared copy
	flagNotPresent uint8 = 1 << 1 // replies: line was not present
	flagHasData    uint8 = 1 << 2 // replies: payload carries line data
	flagIFetch     uint8 = 1 << 3 // ShReq: instruction fetch (fills L1I)
)

// reqPayload is the body of ShReq/ExReq: line, access word-mask, flags.
type reqPayload struct {
	line  uint64
	mask  uint64
	flags uint8
}

// Encoded payload sizes, used by the local-home shortcut to charge the
// exact wire timing a loopback message would have had.
const (
	reqPayloadLen  = 17 // encodeReq
	dataPayloadLen = 21 // encodeData, excluding line data
	linePayloadLen = 8  // encodeLine
)

// ensureLen returns a length-n slice, reusing scratch's storage when it is
// large enough. The encoders below take a scratch buffer because encoded
// payloads live only until the next Send, which copies them into the wire
// frame — each sending context can recycle one buffer for all its sends.
func ensureLen(scratch []byte, n int) []byte {
	if cap(scratch) < n {
		return make([]byte, n)
	}
	return scratch[:n]
}

func encodeReq(scratch []byte, p reqPayload) []byte {
	buf := ensureLen(scratch, 17)
	binary.LittleEndian.PutUint64(buf[0:8], p.line)
	binary.LittleEndian.PutUint64(buf[8:16], p.mask)
	buf[16] = p.flags
	return buf
}

func decodeReq(b []byte) (reqPayload, error) {
	if len(b) != 17 {
		return reqPayload{}, fmt.Errorf("memsys: bad request payload (%d bytes)", len(b))
	}
	return reqPayload{
		line:  binary.LittleEndian.Uint64(b[0:8]),
		mask:  binary.LittleEndian.Uint64(b[8:16]),
		flags: b[16],
	}, nil
}

// dataPayload is the body of data-bearing replies and writebacks:
// line, write/last-writer mask, writer, flags, and optionally line data.
type dataPayload struct {
	line   uint64
	mask   uint64
	writer arch.TileID
	flags  uint8
	data   []byte
}

func encodeData(scratch []byte, p dataPayload) []byte {
	buf := ensureLen(scratch, 21+len(p.data))
	binary.LittleEndian.PutUint64(buf[0:8], p.line)
	binary.LittleEndian.PutUint64(buf[8:16], p.mask)
	binary.LittleEndian.PutUint32(buf[16:20], uint32(int32(p.writer)))
	buf[20] = p.flags
	copy(buf[21:], p.data)
	return buf
}

func decodeData(b []byte) (dataPayload, error) {
	if len(b) < 21 {
		return dataPayload{}, fmt.Errorf("memsys: bad data payload (%d bytes)", len(b))
	}
	p := dataPayload{
		line:   binary.LittleEndian.Uint64(b[0:8]),
		mask:   binary.LittleEndian.Uint64(b[8:16]),
		writer: arch.TileID(int32(binary.LittleEndian.Uint32(b[16:20]))),
		flags:  b[20],
	}
	if len(b) > 21 {
		p.data = b[21:]
	}
	return p, nil
}

// ctrlPayload is the body of InvReq/WbReq/FlushReq/EvictS/EvictAck: just a
// line address.
func encodeLine(scratch []byte, line uint64) []byte {
	buf := ensureLen(scratch, 8)
	binary.LittleEndian.PutUint64(buf, line)
	return buf
}

func decodeLine(b []byte) (uint64, error) {
	if len(b) != 8 {
		return 0, fmt.Errorf("memsys: bad line payload (%d bytes)", len(b))
	}
	return binary.LittleEndian.Uint64(b), nil
}

// peekPayload is the body of Peek/Poke requests and replies.
type peekPayload struct {
	addr arch.Addr
	n    uint32
	data []byte // Poke request and PeekRep carry data
}

func encodePeek(scratch []byte, p peekPayload) []byte {
	buf := ensureLen(scratch, 12+len(p.data))
	binary.LittleEndian.PutUint64(buf[0:8], uint64(p.addr))
	binary.LittleEndian.PutUint32(buf[8:12], p.n)
	copy(buf[12:], p.data)
	return buf
}

func decodePeek(b []byte) (peekPayload, error) {
	if len(b) < 12 {
		return peekPayload{}, fmt.Errorf("memsys: bad peek payload (%d bytes)", len(b))
	}
	p := peekPayload{
		addr: arch.Addr(binary.LittleEndian.Uint64(b[0:8])),
		n:    binary.LittleEndian.Uint32(b[8:12]),
	}
	if len(b) > 12 {
		p.data = b[12:]
	}
	return p, nil
}
