package memsys

import (
	"errors"

	"repro/internal/arch"
	"repro/internal/cache"
	"repro/internal/network"
	"repro/internal/stats"
	"repro/internal/transport"
)

// coreWake is a deferred completion of the local core's outstanding miss:
// Serve delivers the reply packet only after flushing batched sends (see
// Serve). The core context applies the completion itself on wake.
type coreWake struct {
	done chan network.Packet
	pkt  network.Packet
}

// maxDrain bounds how many queued packets Serve processes before flushing
// batched sends and waking the local core, so a long inbound burst cannot
// starve either. Within the bound, replies produced while draining a burst
// coalesce into one transport operation per destination.
const maxDrain = 64

// Serve is the tile's memory server loop. It processes every memory-class
// packet addressed to this tile — directory requests for lines homed here,
// coherence commands for lines cached here, and replies that complete the
// local core's outstanding miss. It returns when the network closes.
//
// The server never blocks on other tiles: home transactions are a state
// machine (blocking directory with per-line pending queues), so the
// distributed protocol cannot deadlock even while this tile's own core is
// blocked on a miss.
//
// The server does not own this tile's caches: the core context does (see
// DESIGN.md §13). Inv/Wb/Flush commands are applied directly only after
// claiming the free ownership word (an idle tile); against a mid-access
// core they are published to the intervention mailbox for the core to
// drain at release. Completion replies are handed to the blocked core,
// which installs the granted line itself after ownership returns with the
// hand-off.
//
// Outgoing messages are batched per destination and flushed when the
// inbound queue is momentarily empty (or maxDrain is hit) — always before
// Serve blocks again, which keeps the protocol live, and always before a
// waiting core is woken, which keeps per-sender FIFO intact: a woken core
// may immediately send new messages (a miss for a line whose flush reply
// is still sitting in the batch, say) that must not overtake them.
func (n *Node) Serve() {
	defer func() {
		// Teardown: unblock a core waiting on a completion that will never
		// arrive. The request slot is dead from here on.
		n.mu.Lock()
		if n.pending != nil {
			done := n.pending.done
			n.pending = nil
			close(done)
		}
		n.mu.Unlock()
		close(n.stopped)
	}()
	var wake []coreWake
	var burst [maxDrain]network.Packet
	for {
		pkt, ok := n.net.Recv(network.ClassMemory)
		if !ok {
			n.flushSends()
			return
		}
		if done, rep := n.dispatch(pkt); done != nil {
			wake = append(wake, coreWake{done, rep})
		}
		if pkt.Src == n.tile {
			n.selfInflight.Add(-1)
		}
		// Drain whatever else is queued — one lock for the whole burst —
		// before flushing and waking, bounded so a long inbound stream can
		// starve neither the flush nor the waiting core.
		k := n.net.TryRecvBurst(network.ClassMemory, burst[1:])
		for i := 1; i <= k; i++ {
			if done, rep := n.dispatch(burst[i]); done != nil {
				wake = append(wake, coreWake{done, rep})
			}
			if burst[i].Src == n.tile {
				n.selfInflight.Add(-1)
			}
			burst[i] = network.Packet{}
		}
		n.flushSends()
		for i := range wake {
			wake[i].done <- wake[i].pkt
			wake[i] = coreWake{}
		}
		wake = wake[:0]
	}
}

// flushSends pushes the server's batched messages onto the fabric.
func (n *Node) flushSends() {
	if err := n.out.Flush(); err != nil && !errors.Is(err, transport.ErrClosed) {
		panic("memsys: transport send failed: " + err.Error())
	}
}

// Stopped reports server termination (for tests and teardown).
func (n *Node) Stopped() <-chan struct{} { return n.stopped }

// dispatch decodes a packet and routes it to its domain: home-side
// messages to the directory shard of their line, cache commands to the
// intervention mailbox (or, while the core is parked, directly against the
// caches), and completions to the blocked core. Nothing under a lock
// blocks, so the domains cannot deadlock against the core context or each
// other.
func (n *Node) dispatch(pkt network.Packet) (chan network.Packet, network.Packet) {
	switch pkt.Type {
	case msgShReq, msgExReq:
		req, err := decodeReq(pkt.Payload)
		if err != nil {
			panic("memsys: " + err.Error())
		}
		sh := n.shardFor(cache.LineAddr(req.line))
		sh.mu.Lock()
		n.handleRequest(sh, pkt, req)
		sh.mu.Unlock()
	case msgEvictS:
		line, err := decodeLine(pkt.Payload)
		if err != nil {
			panic("memsys: " + err.Error())
		}
		sh := n.shardFor(cache.LineAddr(line))
		sh.mu.Lock()
		if dl := sh.lines[cache.LineAddr(line)]; dl != nil {
			dl.entry.RemoveSharer(pkt.Src)
		}
		sh.mu.Unlock()
	case msgEvictM:
		p, err := decodeData(pkt.Payload)
		if err != nil {
			panic("memsys: " + err.Error())
		}
		sh := n.shardFor(cache.LineAddr(p.line))
		sh.mu.Lock()
		n.handleEvictM(sh, pkt, p)
		sh.mu.Unlock()
	case msgInvReq, msgWbReq, msgFlushReq:
		n.queueIntervention(pkt)
	case msgInvRep, msgWbRep, msgFlushRep:
		p, err := decodeData(pkt.Payload)
		if err != nil {
			panic("memsys: " + err.Error())
		}
		sh := n.shardFor(cache.LineAddr(p.line))
		sh.mu.Lock()
		n.handleHomeReply(sh, pkt, p)
		sh.mu.Unlock()
	case msgShRep, msgExRep, msgUpgRep, msgPeekRep, msgPokeAck:
		return n.handoffCompletion(pkt)
	case msgEvictAck:
		n.wbAcked()
	case msgPeek, msgPoke:
		n.handlePeekPoke(pkt)
	case msgCkpt:
		n.runCtrl()
	}
	return nil, network.Packet{}
}

// handoffCompletion matches a completion reply against the outstanding
// request and returns the core's wake channel. For miss completions it
// also re-grants core-domain ownership (marking the word stCoreActive)
// before the reply is delivered: the core installs the line itself, and
// every intervention the server receives from this point on queues in the
// mailbox and is drained by the core after that installation — which is
// exactly arrival order, because the home serializes per line and sent
// the grant first. Stale replies (sequence mismatch) are dropped.
func (n *Node) handoffCompletion(pkt network.Packet) (chan network.Packet, network.Packet) {
	n.mu.Lock()
	pr := n.pending
	if pr == nil || pr.seq != pkt.Seq {
		n.mu.Unlock()
		return nil, network.Packet{}
	}
	n.pending = nil
	if !pr.peek && !pr.poke {
		// The word is free here: the core released it before blocking and
		// the server's own claims are transient under this mu.
		n.coreState.Store(stCoreActive)
	}
	done := pr.done
	n.mu.Unlock()
	return done, pkt
}

// dirLineSlabChunk sizes the shard's dirLine slab: small enough that a
// sparse shard (tile count × shard count of them exist per simulation)
// wastes little, large enough to amortize the allocation.
const dirLineSlabChunk = 8

func (sh *dirShard) dirLineOf(n *Node, l cache.LineAddr) *dirLine {
	dl := sh.lines[l]
	if dl == nil {
		if len(sh.slab) == 0 {
			sh.slab = make([]dirLine, dirLineSlabChunk)
		}
		dl = &sh.slab[0]
		sh.slab = sh.slab[1:]
		dl.entry = sh.store.Alloc()
		sh.lines[l] = dl
	}
	return dl
}

// getTxn takes a transaction record from the shard's free list (or
// allocates the first time). Called with the shard locked.
func (sh *dirShard) getTxn() *txn {
	if len(sh.txnFree) == 0 {
		return &txn{}
	}
	tx := sh.txnFree[len(sh.txnFree)-1]
	sh.txnFree = sh.txnFree[:len(sh.txnFree)-1]
	return tx
}

// putTxn recycles a completed transaction record, keeping its data buffer.
// Called with the shard locked.
func (sh *dirShard) putTxn(tx *txn) {
	buf := tx.data[:0]
	*tx = txn{data: buf}
	sh.txnFree = append(sh.txnFree, tx)
}

// handleRequest is the home's entry point for ShReq/ExReq. Called with the
// line's shard locked.
func (n *Node) handleRequest(sh *dirShard, pkt network.Packet, req reqPayload) {
	sh.dirRequests++
	dl := sh.dirLineOf(n, cache.LineAddr(req.line))
	if dl.busy != nil {
		dl.pending = append(dl.pending, pkt)
		return
	}
	n.startTxn(sh, dl, pkt, req)
}

func (n *Node) startTxn(sh *dirShard, dl *dirLine, pkt network.Packet, req reqPayload) {
	e := dl.entry
	t := pkt.Time + n.cfg.Coherence.DirLatency
	sh.homeSeq++
	tx := sh.getTxn()
	buf := tx.data[:0]
	*tx = txn{
		homeSeq:   sh.homeSeq,
		reqType:   pkt.Type,
		requester: pkt.Src,
		reqSeq:    pkt.Seq,
		reqMask:   req.mask,
		upgrade:   req.flags&flagUpgrade != 0,
		ifetch:    req.flags&flagIFetch != 0,
		line:      cache.LineAddr(req.line),
		latest:    t,
		data:      buf,
	}

	if pkt.Type == msgShReq {
		if e.Owner() != arch.InvalidTile && e.Owner() != pkt.Src {
			// Downgrade the Modified owner and collect its data.
			tx.waitData = true
			tx.dataFrom = e.Owner()
			n.sendSrv(msgWbReq, e.Owner(), tx.homeSeq, n.srvEncLine(req.line), t)
			dl.busy = tx
			return
		}
		// completeTxn adds the requester to the sharer set, handling any
		// Dir_iNB pointer reclaim (which requires another invalidation
		// round before the grant).
		n.completeTxn(sh, dl, tx, t)
		return
	}

	// ExReq.
	if e.Owner() != arch.InvalidTile && e.Owner() != pkt.Src {
		tx.waitData = true
		tx.dataFrom = e.Owner()
		n.sendSrv(msgFlushReq, e.Owner(), tx.homeSeq, n.srvEncLine(req.line), t)
		dl.busy = tx
		return
	}
	// The upgrade is only valid if the requester still holds its S copy.
	tx.upgrade = tx.upgrade && e.ContainsSharer(pkt.Src)
	if e.InvTrap() {
		tx.trapExtra += n.cfg.Coherence.TrapLatency
		sh.dirTraps++
	}
	e.ForEachSharer(func(s arch.TileID) {
		if s == pkt.Src {
			return
		}
		tx.waitAcks++
		sh.invSent++
		n.sendSrv(msgInvReq, s, tx.homeSeq, n.srvEncLine(req.line), t)
	})
	e.ClearSharers()
	if tx.waitAcks > 0 {
		dl.busy = tx
		return
	}
	n.completeTxn(sh, dl, tx, t)
}

// completeTxn grants the request, replies to the requester, and recycles
// the transaction record.
func (n *Node) completeTxn(sh *dirShard, dl *dirLine, tx *txn, now arch.Cycles) {
	e := dl.entry
	t := now
	if tx.latest > t {
		t = tx.latest
	}
	t += tx.trapExtra
	payload := dataPayload{
		line:   uint64(tx.line),
		mask:   e.LastWriterMask(),
		writer: e.LastWriter(),
	}

	if tx.reqType == msgShReq {
		// Track the requester as a sharer. A limited directory (Dir_iNB)
		// may reclaim a pointer: the displaced sharer must be invalidated
		// before the grant, or it would retain a copy the directory no
		// longer knows about — unreachable by later invalidations.
		evict, trap := e.AddSharer(tx.requester)
		if trap {
			tx.trapExtra += n.cfg.Coherence.TrapLatency
			sh.dirTraps++
		}
		if evict != arch.InvalidTile && evict != tx.requester {
			tx.waitAcks++
			sh.invSent++
			n.sendSrv(msgInvReq, evict, tx.homeSeq, n.srvEncLine(uint64(tx.line)), t)
			tx.latest = t
			dl.busy = tx // re-enters completeTxn when the ack arrives
			return
		}
		buf := n.grantBuf
		if tx.haveData {
			// Data flushed by the former owner; it is also written back
			// so every Shared copy is clean (MSI). The writeback occupies
			// the DRAM queue but is off the critical path.
			copy(buf, tx.data)
			n.dramWrite(uint64(tx.line), tx.data, t)
		} else {
			t += n.dramRead(uint64(tx.line), buf, t)
		}
		payload.flags |= flagHasData
		payload.data = buf
		n.sendSrv(msgShRep, tx.requester, tx.reqSeq, n.srvEncData(payload), t)
	} else {
		e.SetLastWriter(tx.requester)
		e.SetLastWriterMask(tx.reqMask)
		if tx.upgrade && !tx.haveData {
			e.SetOwner(tx.requester)
			n.sendSrv(msgUpgRep, tx.requester, tx.reqSeq, n.srvEncData(payload), t)
		} else {
			buf := n.grantBuf
			if tx.haveData {
				// Dirty data moves owner to owner without touching DRAM.
				copy(buf, tx.data)
			} else {
				t += n.dramRead(uint64(tx.line), buf, t)
			}
			e.SetOwner(tx.requester)
			payload.flags |= flagHasData
			payload.data = buf
			n.sendSrv(msgExRep, tx.requester, tx.reqSeq, n.srvEncData(payload), t)
		}
	}
	dl.busy = nil
	sh.putTxn(tx)
	n.popPending(sh, dl)
}

// popPending starts the next queued request for the line, if any.
func (n *Node) popPending(sh *dirShard, dl *dirLine) {
	for dl.busy == nil && len(dl.pending) > 0 {
		pkt := dl.pending[0]
		dl.pending = dl.pending[1:]
		req, err := decodeReq(pkt.Payload)
		if err != nil {
			panic("memsys: " + err.Error())
		}
		n.startTxn(sh, dl, pkt, req)
	}
}

// handleHomeReply processes InvRep/WbRep/FlushRep for an in-flight
// transaction. Stale replies (transaction already satisfied by a crossing
// EvictM) are dropped by sequence-number mismatch. Called with the line's
// shard locked.
func (n *Node) handleHomeReply(sh *dirShard, pkt network.Packet, p dataPayload) {
	dl := sh.lines[cache.LineAddr(p.line)]
	if dl == nil || dl.busy == nil || dl.busy.homeSeq != pkt.Seq {
		return // stale reply from a completed transaction
	}
	tx := dl.busy
	if pkt.Time > tx.latest {
		tx.latest = pkt.Time
	}
	e := dl.entry
	switch pkt.Type {
	case msgInvRep:
		tx.waitAcks--
		if p.flags&flagHasData != 0 {
			// Defensive: an invalidated copy turned out Modified.
			n.dramWrite(p.line, p.data, pkt.Time)
		}
	case msgWbRep:
		if p.flags&flagNotPresent != 0 {
			// Per-sender FIFO guarantees the owner's EvictM reaches us
			// before a not-present WbRep; this reply cannot match an
			// open transaction.
			panic("memsys: WbRep(notPresent) for open transaction")
		}
		tx.waitData = false
		tx.haveData = true
		tx.data = append(tx.data[:0], p.data...)
		tx.dataMask = p.mask
		e.SetOwner(arch.InvalidTile)
		// The former owner retains a Shared copy. An M line has no other
		// sharers, so the pointer set cannot overflow here; handle an
		// eviction anyway so a future protocol variant cannot silently
		// leak an untracked sharer.
		if evict, _ := e.AddSharer(pkt.Src); evict != arch.InvalidTile && evict != pkt.Src {
			tx.waitAcks++
			sh.invSent++
			n.sendSrv(msgInvReq, evict, tx.homeSeq, n.srvEncLine(p.line), pkt.Time)
		}
		e.SetLastWriter(pkt.Src)
		e.SetLastWriterMask(p.mask)
	case msgFlushRep:
		if p.flags&flagNotPresent != 0 {
			panic("memsys: FlushRep(notPresent) for open transaction")
		}
		tx.waitData = false
		tx.haveData = true
		tx.data = append(tx.data[:0], p.data...)
		tx.dataMask = p.mask
		e.SetOwner(arch.InvalidTile)
		e.SetLastWriter(pkt.Src)
		e.SetLastWriterMask(p.mask)
	}
	if tx.waitAcks == 0 && !tx.waitData {
		n.completeTxn(sh, dl, tx, tx.latest)
	}
}

// handleEvictM applies a dirty writeback. If a transaction is waiting for
// a flush from the evicting owner, the writeback doubles as the flush data
// (the owner's not-present reply that follows is dropped as stale).
// Called with the line's shard locked.
func (n *Node) handleEvictM(sh *dirShard, pkt network.Packet, p dataPayload) {
	n.sendSrv(msgEvictAck, pkt.Src, pkt.Seq, n.srvEncLine(p.line), pkt.Time)
	dl := sh.dirLineOf(n, cache.LineAddr(p.line))
	e := dl.entry
	n.dramWrite(p.line, p.data, pkt.Time)
	if dl.busy != nil && dl.busy.waitData && dl.busy.dataFrom == pkt.Src {
		tx := dl.busy
		tx.waitData = false
		tx.haveData = true
		tx.data = append(tx.data[:0], p.data...)
		tx.dataMask = p.mask
		if pkt.Time > tx.latest {
			tx.latest = pkt.Time
		}
		e.SetOwner(arch.InvalidTile)
		e.SetLastWriter(pkt.Src)
		e.SetLastWriterMask(p.mask)
		if tx.waitAcks == 0 {
			n.completeTxn(sh, dl, tx, tx.latest)
		}
		return
	}
	if e.Owner() == pkt.Src {
		e.SetOwner(arch.InvalidTile)
		e.SetLastWriter(pkt.Src)
		e.SetLastWriterMask(p.mask)
	}
}

// applyIntervention serves one Inv/Wb/Flush command against the local
// caches. It runs in whichever context owns the core domain at the time:
// the core context draining its mailbox (srv == false, immediate replies)
// or the server goroutine while the core is parked (srv == true, batched
// replies flushed before the core can wake). Called with mu held.
func (n *Node) applyIntervention(pkt network.Packet, srv bool) {
	line, err := decodeLine(pkt.Payload)
	if err != nil {
		panic("memsys: " + err.Error())
	}
	l := cache.LineAddr(line)
	t := pkt.Time + n.l2.HitLatency()
	pay := dataPayload{line: line, writer: n.tile}

	var typ uint8
	switch pkt.Type {
	case msgInvReq:
		typ = msgInvRep
		if v, ok := n.l2.Invalidate(l); ok {
			if v.State == cache.Modified {
				// Defensive: should have been a FlushReq.
				pay.flags |= flagHasData
				pay.mask = v.WriteMask
				pay.data = v.Data
			}
			n.invL1(l)
			n.markInvalidated(l)
		} else {
			pay.flags |= flagNotPresent
		}
	case msgWbReq:
		typ = msgWbRep
		if ln, ok := n.l2.Peek(l); ok {
			pay.flags |= flagHasData
			pay.mask = ln.WriteMask()
			pay.data = ln.Data() // copied by the payload encoder below
			n.l2.Downgrade(l)
		} else {
			pay.flags |= flagNotPresent
		}
	case msgFlushReq:
		typ = msgFlushRep
		if v, ok := n.l2.Invalidate(l); ok {
			pay.flags |= flagHasData
			pay.mask = v.WriteMask
			pay.data = v.Data
			n.invL1(l)
			n.markInvalidated(l)
		} else {
			pay.flags |= flagNotPresent
		}
	default:
		panic("memsys: unexpected intervention " + msgName(pkt.Type))
	}
	if srv {
		n.sendSrv(typ, pkt.Src, pkt.Seq, n.srvEncData(pay), t)
	} else {
		n.send(typ, pkt.Src, pkt.Seq, n.coreEncData(pay), t)
	}
}

// applyWrite stores a write into a Modified L2 line and keeps the
// write-through L1D copy coherent. Core context only.
func (n *Node) applyWrite(ln cache.Line, line cache.LineAddr, off int, wbuf []byte, mask uint64) {
	copy(ln.Data()[off:], wbuf)
	ln.SetDirty(true)
	ln.OrWriteMask(mask)
	if n.l1d != nil {
		if l1, ok := n.l1d.Peek(line); ok {
			copy(l1.Data()[off:], wbuf)
		}
	}
}

// fillL1 installs a freshly read line into the appropriate L1.
func (n *Node) fillL1(line cache.LineAddr, ifetch bool, data []byte) {
	if ifetch {
		if n.l1i != nil {
			n.l1i.Insert(line, cache.Shared, data)
		}
		return
	}
	if n.l1d != nil {
		n.l1d.Insert(line, cache.Shared, data)
	}
}

// classify determines the miss kind (paper §4.4 / Figure 8). writer and
// wmask are the line's last writer and its accumulated write mask as
// granted by the home.
func (n *Node) classify(line cache.LineAddr, mask uint64, writer arch.TileID, wmask uint64) stats.MissKind {
	if _, seen := n.everAccessed[line]; !seen {
		return stats.MissCold
	}
	if _, inv := n.invalidated[line]; inv {
		if writer != n.tile && writer != arch.InvalidTile && wmask&mask != 0 {
			return stats.MissTrueSharing
		}
		return stats.MissFalseSharing
	}
	return stats.MissCapacity
}

// processVictim handles an L2 eviction: L1 inclusion and the home
// notification (writeback for Modified victims). It runs in the core
// context, so the notification is sent immediately — per-sender FIFO
// orders it ahead of any later miss the core issues for the same line.
// Locally homed victims are applied inline when safe (localEvict).
func (n *Node) processVictim(victim cache.Victim, now arch.Cycles) {
	n.invL1(victim.Addr)
	home := n.homeOf(victim.Addr)
	if home == n.tile && n.localEvict(victim, now) {
		return
	}
	if victim.State == cache.Modified {
		n.outstandingWB.Add(1)
		pay := dataPayload{line: uint64(victim.Addr), mask: victim.WriteMask, writer: n.tile, flags: flagHasData, data: victim.Data}
		n.send(msgEvictM, home, 0, n.coreEncData(pay), now)
	} else {
		n.send(msgEvictS, home, 0, n.coreEncLine(uint64(victim.Addr)), now)
	}
}

// localEvict applies an eviction notification at the local home inline,
// skipping the loopback EvictS/EvictM (and, for writebacks, the ack that
// exists only to let FlushAll wait for remote application — a synchronous
// local writeback needs none). The modeled timing matches the messaged
// path: the notification's loopback delay is charged before the DRAM
// write and the progress window sees the same delivery samples. Bails
// (returns false) under the same ordering guards as localMiss: any
// self-directed message in flight, or an open transaction on the line.
// Called in the core context with no shard lock held; mu may or may not
// be held (FlushAll holds it, the post-miss victim path does not) — the
// function must therefore touch only shard-guarded state, the atomic
// selfInflight word, and the DRAM domain, never the mailbox or the
// pending slot.
func (n *Node) localEvict(victim cache.Victim, now arch.Cycles) bool {
	if n.selfInflight.Load() != 0 {
		return false
	}
	sh := n.shardFor(victim.Addr)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if victim.State != cache.Modified {
		// Clean eviction: drop the sharer bit, as dispatch(msgEvictS) would.
		if dl := sh.lines[victim.Addr]; dl != nil {
			if dl.busy != nil {
				return false
			}
			dl.entry.RemoveSharer(n.tile)
		}
		n.net.Observe(now + n.net.Delay(network.ClassMemory, n.tile, linePayloadLen, now))
		return true
	}
	dl := sh.dirLineOf(n, victim.Addr)
	if dl.busy != nil {
		return false
	}
	arr := now + n.net.Delay(network.ClassMemory, n.tile, dataPayloadLen+len(victim.Data), now)
	n.net.Observe(arr)
	n.dramWrite(uint64(victim.Addr), victim.Data, arr)
	e := dl.entry
	if e.Owner() == n.tile {
		e.SetOwner(arch.InvalidTile)
		e.SetLastWriter(n.tile)
		e.SetLastWriterMask(victim.WriteMask)
	}
	// Mirror the EvictAck delivery the messaged path would have produced.
	n.net.Observe(arr + n.net.Delay(network.ClassMemory, n.tile, linePayloadLen, arr))
	return true
}

func (n *Node) invL1(l cache.LineAddr) {
	if n.l1i != nil {
		n.l1i.Invalidate(l)
	}
	if n.l1d != nil {
		n.l1d.Invalidate(l)
	}
}

func (n *Node) markInvalidated(l cache.LineAddr) {
	n.invalidated[l] = struct{}{}
}

// handlePeekPoke serves functional memory access against the home backing
// store. Valid only pre-run or post-flush (no dirty cached copies).
func (n *Node) handlePeekPoke(pkt network.Packet) {
	p, err := decodePeek(pkt.Payload)
	if err != nil {
		panic("memsys: " + err.Error())
	}
	line := uint64(p.addr) >> n.lineBits
	off := int(uint64(p.addr) & (uint64(n.lineSize) - 1))
	if pkt.Type == msgPoke {
		n.dramMu.Lock()
		n.dram.Poke(line, off, p.data)
		n.dramMu.Unlock()
		n.sendSrv(msgPokeAck, pkt.Src, pkt.Seq, nil, pkt.Time)
		return
	}
	buf := make([]byte, p.n)
	n.dramMu.Lock()
	n.dram.Peek(line, off, buf)
	n.dramMu.Unlock()
	n.sendSrv(msgPeekRep, pkt.Src, pkt.Seq, n.srvEncPeek(peekPayload{addr: p.addr, n: p.n, data: buf}), pkt.Time)
}

func (n *Node) wbAcked() {
	if n.outstandingWB.Add(-1) == 0 {
		select {
		case n.wbDrained <- struct{}{}:
		default:
		}
	}
}
