package memsys

import (
	"repro/internal/arch"
	"repro/internal/cache"
	"repro/internal/directory"
	"repro/internal/network"
	"repro/internal/stats"
)

// Serve is the tile's memory server loop. It processes every memory-class
// packet addressed to this tile — directory requests for lines homed here,
// coherence commands for lines cached here, and replies that complete the
// local core's outstanding miss. It returns when the network closes.
//
// The server never blocks on other tiles: home transactions are a state
// machine (blocking directory with per-line pending queues), so the
// distributed protocol cannot deadlock even while this tile's own core is
// blocked on a miss.
func (n *Node) Serve() {
	defer close(n.stopped)
	for {
		pkt, ok := n.net.Recv(network.ClassMemory)
		if !ok {
			return
		}
		n.dispatch(pkt)
	}
}

// Stopped reports server termination (for tests and teardown).
func (n *Node) Stopped() <-chan struct{} { return n.stopped }

func (n *Node) dispatch(pkt network.Packet) {
	// One per-tile mutex guards the caches, the directory shard, stats,
	// and the pending request slot. Nothing under it blocks: transport
	// sends are unbounded.
	n.mu.Lock()
	var done chan replyInfo
	var info replyInfo
	switch pkt.Type {
	case msgShReq, msgExReq:
		n.handleRequest(pkt)
	case msgEvictS:
		n.handleEvictS(pkt)
	case msgEvictM:
		n.handleEvictM(pkt)
	case msgInvReq, msgWbReq, msgFlushReq:
		n.handleControllerOp(pkt)
	case msgInvRep, msgWbRep, msgFlushRep:
		n.handleHomeReply(pkt)
	case msgShRep, msgExRep, msgUpgRep, msgPeekRep, msgPokeAck:
		done, info = n.completeCore(pkt)
	case msgEvictAck:
		n.wbAcked()
	case msgPeek, msgPoke:
		n.handlePeekPoke(pkt)
	}
	n.mu.Unlock()
	if done != nil {
		done <- info
	}
}

func (n *Node) dirLineOf(l cache.LineAddr) *dirLine {
	dl := n.dir[l]
	if dl == nil {
		dl = &dirLine{entry: directory.NewEntry(n.cfg.Coherence, n.cfg.Tiles)}
		n.dir[l] = dl
	}
	return dl
}

// handleRequest is the home's entry point for ShReq/ExReq.
func (n *Node) handleRequest(pkt network.Packet) {
	req, err := decodeReq(pkt.Payload)
	if err != nil {
		panic("memsys: " + err.Error())
	}
	n.st.DirRequests++
	dl := n.dirLineOf(cache.LineAddr(req.line))
	if dl.busy != nil {
		dl.pending = append(dl.pending, pkt)
		return
	}
	n.startTxn(dl, pkt, req)
}

func (n *Node) startTxn(dl *dirLine, pkt network.Packet, req reqPayload) {
	e := dl.entry
	t := pkt.Time + n.cfg.Coherence.DirLatency
	n.homeSeq++
	tx := &txn{
		homeSeq:   n.homeSeq,
		reqType:   pkt.Type,
		requester: pkt.Src,
		reqSeq:    pkt.Seq,
		reqMask:   req.mask,
		upgrade:   req.flags&flagUpgrade != 0,
		ifetch:    req.flags&flagIFetch != 0,
		line:      cache.LineAddr(req.line),
		latest:    t,
	}

	if pkt.Type == msgShReq {
		if e.Owner != arch.InvalidTile && e.Owner != pkt.Src {
			// Downgrade the Modified owner and collect its data.
			tx.waitData = true
			tx.dataFrom = e.Owner
			n.send(msgWbReq, e.Owner, tx.homeSeq, encodeLine(req.line), t)
			dl.busy = tx
			return
		}
		// completeTxn adds the requester to the sharer set, handling any
		// Dir_iNB pointer reclaim (which requires another invalidation
		// round before the grant).
		n.completeTxn(dl, tx, t)
		return
	}

	// ExReq.
	if e.Owner != arch.InvalidTile && e.Owner != pkt.Src {
		tx.waitData = true
		tx.dataFrom = e.Owner
		n.send(msgFlushReq, e.Owner, tx.homeSeq, encodeLine(req.line), t)
		dl.busy = tx
		return
	}
	// The upgrade is only valid if the requester still holds its S copy.
	tx.upgrade = tx.upgrade && e.Sharers.Contains(pkt.Src)
	if e.Sharers.InvTrap() {
		tx.trapExtra += n.cfg.Coherence.TrapLatency
		n.st.DirTraps++
	}
	e.Sharers.ForEach(func(s arch.TileID) {
		if s == pkt.Src {
			return
		}
		tx.waitAcks++
		n.st.InvSent++
		n.send(msgInvReq, s, tx.homeSeq, encodeLine(req.line), t)
	})
	e.Sharers.Clear()
	if tx.waitAcks > 0 {
		dl.busy = tx
		return
	}
	n.completeTxn(dl, tx, t)
}

// completeTxn grants the request and replies to the requester.
func (n *Node) completeTxn(dl *dirLine, tx *txn, now arch.Cycles) {
	e := dl.entry
	t := now
	if tx.latest > t {
		t = tx.latest
	}
	t += tx.trapExtra
	payload := dataPayload{
		line:   uint64(tx.line),
		mask:   e.LastWriterMask,
		writer: e.LastWriter,
	}

	if tx.reqType == msgShReq {
		// Track the requester as a sharer. A limited directory (Dir_iNB)
		// may reclaim a pointer: the displaced sharer must be invalidated
		// before the grant, or it would retain a copy the directory no
		// longer knows about — unreachable by later invalidations.
		evict, trap := e.Sharers.Add(tx.requester)
		if trap {
			tx.trapExtra += n.cfg.Coherence.TrapLatency
			n.st.DirTraps++
		}
		if evict != arch.InvalidTile && evict != tx.requester {
			tx.waitAcks++
			n.st.InvSent++
			n.send(msgInvReq, evict, tx.homeSeq, encodeLine(uint64(tx.line)), t)
			tx.latest = t
			dl.busy = tx // re-enters completeTxn when the ack arrives
			return
		}
		buf := make([]byte, n.lineSize)
		if tx.haveData {
			// Data flushed by the former owner; it is also written back
			// so every Shared copy is clean (MSI). The writeback occupies
			// the DRAM queue but is off the critical path.
			copy(buf, tx.data)
			n.dram.WriteLine(uint64(tx.line), tx.data, t)
		} else {
			t += n.dram.ReadLine(uint64(tx.line), buf, t)
		}
		payload.flags |= flagHasData
		payload.data = buf
		n.send(msgShRep, tx.requester, tx.reqSeq, encodeData(payload), t)
	} else {
		e.LastWriter = tx.requester
		e.LastWriterMask = tx.reqMask
		if tx.upgrade && !tx.haveData {
			e.Owner = tx.requester
			n.send(msgUpgRep, tx.requester, tx.reqSeq, encodeData(payload), t)
		} else {
			buf := make([]byte, n.lineSize)
			if tx.haveData {
				// Dirty data moves owner to owner without touching DRAM.
				copy(buf, tx.data)
			} else {
				t += n.dram.ReadLine(uint64(tx.line), buf, t)
			}
			e.Owner = tx.requester
			payload.flags |= flagHasData
			payload.data = buf
			n.send(msgExRep, tx.requester, tx.reqSeq, encodeData(payload), t)
		}
	}
	dl.busy = nil
	n.popPending(dl)
}

// popPending starts the next queued request for the line, if any.
func (n *Node) popPending(dl *dirLine) {
	for dl.busy == nil && len(dl.pending) > 0 {
		pkt := dl.pending[0]
		dl.pending = dl.pending[1:]
		req, err := decodeReq(pkt.Payload)
		if err != nil {
			panic("memsys: " + err.Error())
		}
		n.startTxn(dl, pkt, req)
	}
}

// handleHomeReply processes InvRep/WbRep/FlushRep for an in-flight
// transaction. Stale replies (transaction already satisfied by a crossing
// EvictM) are dropped by sequence-number mismatch.
func (n *Node) handleHomeReply(pkt network.Packet) {
	p, err := decodeData(pkt.Payload)
	if err != nil {
		panic("memsys: " + err.Error())
	}
	dl := n.dir[cache.LineAddr(p.line)]
	if dl == nil || dl.busy == nil || dl.busy.homeSeq != pkt.Seq {
		return // stale reply from a completed transaction
	}
	tx := dl.busy
	if pkt.Time > tx.latest {
		tx.latest = pkt.Time
	}
	e := dl.entry
	switch pkt.Type {
	case msgInvRep:
		tx.waitAcks--
		if p.flags&flagHasData != 0 {
			// Defensive: an invalidated copy turned out Modified.
			n.dram.WriteLine(p.line, p.data, pkt.Time)
		}
	case msgWbRep:
		if p.flags&flagNotPresent != 0 {
			// Per-sender FIFO guarantees the owner's EvictM reaches us
			// before a not-present WbRep; this reply cannot match an
			// open transaction.
			panic("memsys: WbRep(notPresent) for open transaction")
		}
		tx.waitData = false
		tx.haveData = true
		tx.data = cloneBytes(p.data)
		tx.dataMask = p.mask
		e.Owner = arch.InvalidTile
		// The former owner retains a Shared copy. An M line has no other
		// sharers, so the pointer set cannot overflow here; handle an
		// eviction anyway so a future protocol variant cannot silently
		// leak an untracked sharer.
		if evict, _ := e.Sharers.Add(pkt.Src); evict != arch.InvalidTile && evict != pkt.Src {
			tx.waitAcks++
			n.st.InvSent++
			n.send(msgInvReq, evict, tx.homeSeq, encodeLine(p.line), pkt.Time)
		}
		e.LastWriter = pkt.Src
		e.LastWriterMask = p.mask
	case msgFlushRep:
		if p.flags&flagNotPresent != 0 {
			panic("memsys: FlushRep(notPresent) for open transaction")
		}
		tx.waitData = false
		tx.haveData = true
		tx.data = cloneBytes(p.data)
		tx.dataMask = p.mask
		e.Owner = arch.InvalidTile
		e.LastWriter = pkt.Src
		e.LastWriterMask = p.mask
	}
	if tx.waitAcks == 0 && !tx.waitData {
		n.completeTxn(dl, tx, tx.latest)
	}
}

// handleEvictS removes a sharer after a clean eviction notification.
func (n *Node) handleEvictS(pkt network.Packet) {
	line, err := decodeLine(pkt.Payload)
	if err != nil {
		panic("memsys: " + err.Error())
	}
	if dl := n.dir[cache.LineAddr(line)]; dl != nil {
		dl.entry.Sharers.Remove(pkt.Src)
	}
}

// handleEvictM applies a dirty writeback. If a transaction is waiting for
// a flush from the evicting owner, the writeback doubles as the flush data
// (the owner's not-present reply that follows is dropped as stale).
func (n *Node) handleEvictM(pkt network.Packet) {
	p, err := decodeData(pkt.Payload)
	if err != nil {
		panic("memsys: " + err.Error())
	}
	n.send(msgEvictAck, pkt.Src, pkt.Seq, encodeLine(p.line), pkt.Time)
	dl := n.dirLineOf(cache.LineAddr(p.line))
	e := dl.entry
	n.dram.WriteLine(p.line, p.data, pkt.Time)
	if dl.busy != nil && dl.busy.waitData && dl.busy.dataFrom == pkt.Src {
		tx := dl.busy
		tx.waitData = false
		tx.haveData = true
		tx.data = cloneBytes(p.data)
		tx.dataMask = p.mask
		if pkt.Time > tx.latest {
			tx.latest = pkt.Time
		}
		e.Owner = arch.InvalidTile
		e.LastWriter = pkt.Src
		e.LastWriterMask = p.mask
		if tx.waitAcks == 0 {
			n.completeTxn(dl, tx, tx.latest)
		}
		return
	}
	if e.Owner == pkt.Src {
		e.Owner = arch.InvalidTile
		e.LastWriter = pkt.Src
		e.LastWriterMask = p.mask
	}
}

// handleControllerOp serves Inv/Wb/Flush commands against the local caches.
func (n *Node) handleControllerOp(pkt network.Packet) {
	line, err := decodeLine(pkt.Payload)
	if err != nil {
		panic("memsys: " + err.Error())
	}
	l := cache.LineAddr(line)
	t := pkt.Time + n.l2.HitLatency()
	pay := dataPayload{line: line, writer: n.tile}

	switch pkt.Type {
	case msgInvReq:
		if ln, ok := n.l2.Invalidate(l); ok {
			if ln.State == cache.Modified {
				// Defensive: should have been a FlushReq.
				pay.flags |= flagHasData
				pay.mask = ln.WriteMask
				pay.data = ln.Data
			}
			n.invL1(l)
			n.markInvalidated(l)
		} else {
			pay.flags |= flagNotPresent
		}
		n.send(msgInvRep, pkt.Src, pkt.Seq, encodeData(pay), t)
	case msgWbReq:
		if ln := n.l2.Peek(l); ln != nil {
			pay.flags |= flagHasData
			pay.mask = ln.WriteMask
			pay.data = cloneBytes(ln.Data)
			n.l2.Downgrade(l)
		} else {
			pay.flags |= flagNotPresent
		}
		n.send(msgWbRep, pkt.Src, pkt.Seq, encodeData(pay), t)
	case msgFlushReq:
		if ln, ok := n.l2.Invalidate(l); ok {
			pay.flags |= flagHasData
			pay.mask = ln.WriteMask
			pay.data = ln.Data
			n.invL1(l)
			n.markInvalidated(l)
		} else {
			pay.flags |= flagNotPresent
		}
		n.send(msgFlushRep, pkt.Src, pkt.Seq, encodeData(pay), t)
	}
}

// completeCore finishes the tile's outstanding miss: it installs the line,
// applies the pending operation, classifies the miss, and returns the
// waiting core's channel (signaled by the caller after unlocking).
func (n *Node) completeCore(pkt network.Packet) (chan replyInfo, replyInfo) {
	pr := n.pending
	if pr == nil || pr.seq != pkt.Seq {
		return nil, replyInfo{}
	}
	n.pending = nil
	info := replyInfo{arrival: pkt.Time}

	switch pkt.Type {
	case msgPokeAck:
		return pr.done, info
	case msgPeekRep:
		p, err := decodePeek(pkt.Payload)
		if err != nil {
			panic("memsys: " + err.Error())
		}
		info.data = cloneBytes(p.data)
		return pr.done, info
	}

	p, err := decodeData(pkt.Payload)
	if err != nil {
		panic("memsys: " + err.Error())
	}

	switch pkt.Type {
	case msgUpgRep:
		ln := n.l2.Peek(pr.line)
		if ln == nil {
			// Home serializes per line: nothing can invalidate our copy
			// between the upgrade grant and its arrival.
			panic("memsys: upgrade grant for absent line")
		}
		ln.State = cache.Modified
		n.applyWrite(ln, pr)
		info.upgraded = true
		n.st.Upgrades++
	case msgShRep, msgExRep:
		st := cache.Shared
		if pkt.Type == msgExRep {
			st = cache.Modified
		}
		if victim, evicted := n.l2.Insert(pr.line, st, p.data); evicted {
			n.processVictim(victim, pkt.Time)
		}
		ln := n.l2.Peek(pr.line)
		if pr.isWrite {
			n.applyWrite(ln, pr)
		} else {
			copy(pr.rbuf, ln.Data[pr.off:pr.off+len(pr.rbuf)])
			n.fillL1(pr, ln.Data)
		}
		if pr.ifetch {
			n.st.IFetchMisses++
		} else {
			info.kind = n.classify(pr, p)
			n.st.MissBy[info.kind]++
			lat := pkt.Time - pr.sentAt
			if lat < 0 {
				lat = 0
			}
			n.st.MemLatencyTotal += lat
			n.st.MemAccesses++
		}
		delete(n.invalidated, pr.line)
		n.everAccessed[pr.line] = struct{}{}
	}
	return pr.done, info
}

// applyWrite stores the pending write into a Modified L2 line and keeps
// the write-through L1D copy coherent.
func (n *Node) applyWrite(ln *cache.Line, pr *pendingReq) {
	copy(ln.Data[pr.off:], pr.wbuf)
	ln.Dirty = true
	ln.WriteMask |= pr.mask
	if n.l1d != nil {
		if l1 := n.l1d.Peek(pr.line); l1 != nil {
			copy(l1.Data[pr.off:], pr.wbuf)
		}
	}
}

// fillL1 installs a freshly read line into the appropriate L1.
func (n *Node) fillL1(pr *pendingReq, data []byte) {
	if pr.ifetch {
		if n.l1i != nil {
			n.l1i.Insert(pr.line, cache.Shared, data)
		}
		return
	}
	if n.l1d != nil {
		n.l1d.Insert(pr.line, cache.Shared, data)
	}
}

// classify determines the miss kind (paper §4.4 / Figure 8).
func (n *Node) classify(pr *pendingReq, p dataPayload) stats.MissKind {
	if _, seen := n.everAccessed[pr.line]; !seen {
		return stats.MissCold
	}
	if _, inv := n.invalidated[pr.line]; inv {
		if p.writer != n.tile && p.writer != arch.InvalidTile && p.mask&pr.mask != 0 {
			return stats.MissTrueSharing
		}
		return stats.MissFalseSharing
	}
	return stats.MissCapacity
}

// processVictim handles an L2 eviction: L1 inclusion and the home
// notification (writeback for Modified victims).
func (n *Node) processVictim(victim cache.Line, now arch.Cycles) {
	n.invL1(victim.Addr)
	home := n.homeOf(victim.Addr)
	if victim.State == cache.Modified {
		n.outstandingWB.Add(1)
		pay := dataPayload{line: uint64(victim.Addr), mask: victim.WriteMask, writer: n.tile, flags: flagHasData, data: victim.Data}
		n.send(msgEvictM, home, 0, encodeData(pay), now)
	} else {
		n.send(msgEvictS, home, 0, encodeLine(uint64(victim.Addr)), now)
	}
}

func (n *Node) invL1(l cache.LineAddr) {
	if n.l1i != nil {
		n.l1i.Invalidate(l)
	}
	if n.l1d != nil {
		n.l1d.Invalidate(l)
	}
}

func (n *Node) markInvalidated(l cache.LineAddr) {
	n.invalidated[l] = struct{}{}
}

// handlePeekPoke serves functional memory access against the home backing
// store. Valid only pre-run or post-flush (no dirty cached copies).
func (n *Node) handlePeekPoke(pkt network.Packet) {
	p, err := decodePeek(pkt.Payload)
	if err != nil {
		panic("memsys: " + err.Error())
	}
	line := uint64(p.addr) >> n.lineBits
	off := int(uint64(p.addr) & (uint64(n.lineSize) - 1))
	if pkt.Type == msgPoke {
		n.dram.Poke(line, off, p.data)
		n.send(msgPokeAck, pkt.Src, pkt.Seq, nil, pkt.Time)
		return
	}
	buf := make([]byte, p.n)
	n.dram.Peek(line, off, buf)
	n.send(msgPeekRep, pkt.Src, pkt.Seq, encodePeek(peekPayload{addr: p.addr, n: p.n, data: buf}), pkt.Time)
}

func (n *Node) wbAcked() {
	if n.outstandingWB.Add(-1) == 0 {
		select {
		case n.wbDrained <- struct{}{}:
		default:
		}
	}
}

func cloneBytes(b []byte) []byte {
	out := make([]byte, len(b))
	copy(out, b)
	return out
}
