package memsys

import (
	"errors"

	"repro/internal/arch"
	"repro/internal/cache"
	"repro/internal/directory"
	"repro/internal/network"
	"repro/internal/stats"
	"repro/internal/transport"
)

// coreWake is a deferred completion of the local core's outstanding miss:
// Serve signals it only after flushing batched sends (see Serve).
type coreWake struct {
	done chan replyInfo
	info replyInfo
}

// maxDrain bounds how many queued packets Serve processes before flushing
// batched sends and waking the local core, so a long inbound burst cannot
// starve either. Within the bound, replies produced while draining a burst
// coalesce into one transport operation per destination.
const maxDrain = 64

// Serve is the tile's memory server loop. It processes every memory-class
// packet addressed to this tile — directory requests for lines homed here,
// coherence commands for lines cached here, and replies that complete the
// local core's outstanding miss. It returns when the network closes.
//
// The server never blocks on other tiles: home transactions are a state
// machine (blocking directory with per-line pending queues), so the
// distributed protocol cannot deadlock even while this tile's own core is
// blocked on a miss.
//
// Outgoing messages are batched per destination and flushed when the
// inbound queue is momentarily empty (or maxDrain is hit) — always before
// Serve blocks again, which keeps the protocol live, and always before a
// waiting core thread is woken, which keeps per-sender FIFO intact: a
// woken core may immediately send new messages (a miss for the line just
// evicted, say) that must not overtake the writeback still sitting in the
// batch.
func (n *Node) Serve() {
	defer close(n.stopped)
	var wake []coreWake
	for {
		pkt, ok := n.net.Recv(network.ClassMemory)
		if !ok {
			n.flushSends()
			return
		}
		for processed := 1; ; processed++ {
			if done, info := n.dispatch(pkt); done != nil {
				wake = append(wake, coreWake{done, info})
			}
			if processed >= maxDrain {
				break
			}
			if pkt, ok = n.net.TryRecv(network.ClassMemory); !ok {
				break
			}
		}
		n.flushSends()
		for i := range wake {
			wake[i].done <- wake[i].info
			wake[i] = coreWake{}
		}
		wake = wake[:0]
	}
}

// flushSends pushes the server's batched messages onto the fabric.
func (n *Node) flushSends() {
	if err := n.out.Flush(); err != nil && !errors.Is(err, transport.ErrClosed) {
		panic("memsys: transport send failed: " + err.Error())
	}
}

// Stopped reports server termination (for tests and teardown).
func (n *Node) Stopped() <-chan struct{} { return n.stopped }

// dispatch decodes a packet and routes it to its lock domain: home-side
// messages to the directory shard of their line, cache commands and core
// completions to the core domain (mu). Exactly one domain lock is taken
// per message and nothing under a lock blocks, so the domains cannot
// deadlock against the core thread or each other.
func (n *Node) dispatch(pkt network.Packet) (chan replyInfo, replyInfo) {
	switch pkt.Type {
	case msgShReq, msgExReq:
		req, err := decodeReq(pkt.Payload)
		if err != nil {
			panic("memsys: " + err.Error())
		}
		sh := n.shardFor(cache.LineAddr(req.line))
		sh.mu.Lock()
		n.handleRequest(sh, pkt, req)
		sh.mu.Unlock()
	case msgEvictS:
		line, err := decodeLine(pkt.Payload)
		if err != nil {
			panic("memsys: " + err.Error())
		}
		sh := n.shardFor(cache.LineAddr(line))
		sh.mu.Lock()
		if dl := sh.lines[cache.LineAddr(line)]; dl != nil {
			dl.entry.Sharers.Remove(pkt.Src)
		}
		sh.mu.Unlock()
	case msgEvictM:
		p, err := decodeData(pkt.Payload)
		if err != nil {
			panic("memsys: " + err.Error())
		}
		sh := n.shardFor(cache.LineAddr(p.line))
		sh.mu.Lock()
		n.handleEvictM(sh, pkt, p)
		sh.mu.Unlock()
	case msgInvReq, msgWbReq, msgFlushReq:
		n.mu.Lock()
		n.handleControllerOp(pkt)
		n.mu.Unlock()
	case msgInvRep, msgWbRep, msgFlushRep:
		p, err := decodeData(pkt.Payload)
		if err != nil {
			panic("memsys: " + err.Error())
		}
		sh := n.shardFor(cache.LineAddr(p.line))
		sh.mu.Lock()
		n.handleHomeReply(sh, pkt, p)
		sh.mu.Unlock()
	case msgShRep, msgExRep, msgUpgRep, msgPeekRep, msgPokeAck:
		n.mu.Lock()
		done, info := n.completeCore(pkt)
		n.mu.Unlock()
		return done, info
	case msgEvictAck:
		n.wbAcked()
	case msgPeek, msgPoke:
		n.handlePeekPoke(pkt)
	}
	return nil, replyInfo{}
}

func (sh *dirShard) dirLineOf(n *Node, l cache.LineAddr) *dirLine {
	dl := sh.lines[l]
	if dl == nil {
		dl = &dirLine{entry: directory.NewEntry(n.cfg.Coherence, n.cfg.Tiles)}
		sh.lines[l] = dl
	}
	return dl
}

// handleRequest is the home's entry point for ShReq/ExReq. Called with the
// line's shard locked.
func (n *Node) handleRequest(sh *dirShard, pkt network.Packet, req reqPayload) {
	sh.dirRequests++
	dl := sh.dirLineOf(n, cache.LineAddr(req.line))
	if dl.busy != nil {
		dl.pending = append(dl.pending, pkt)
		return
	}
	n.startTxn(sh, dl, pkt, req)
}

func (n *Node) startTxn(sh *dirShard, dl *dirLine, pkt network.Packet, req reqPayload) {
	e := dl.entry
	t := pkt.Time + n.cfg.Coherence.DirLatency
	sh.homeSeq++
	tx := &txn{
		homeSeq:   sh.homeSeq,
		reqType:   pkt.Type,
		requester: pkt.Src,
		reqSeq:    pkt.Seq,
		reqMask:   req.mask,
		upgrade:   req.flags&flagUpgrade != 0,
		ifetch:    req.flags&flagIFetch != 0,
		line:      cache.LineAddr(req.line),
		latest:    t,
	}

	if pkt.Type == msgShReq {
		if e.Owner != arch.InvalidTile && e.Owner != pkt.Src {
			// Downgrade the Modified owner and collect its data.
			tx.waitData = true
			tx.dataFrom = e.Owner
			n.sendSrv(msgWbReq, e.Owner, tx.homeSeq, n.srvEncLine(req.line), t)
			dl.busy = tx
			return
		}
		// completeTxn adds the requester to the sharer set, handling any
		// Dir_iNB pointer reclaim (which requires another invalidation
		// round before the grant).
		n.completeTxn(sh, dl, tx, t)
		return
	}

	// ExReq.
	if e.Owner != arch.InvalidTile && e.Owner != pkt.Src {
		tx.waitData = true
		tx.dataFrom = e.Owner
		n.sendSrv(msgFlushReq, e.Owner, tx.homeSeq, n.srvEncLine(req.line), t)
		dl.busy = tx
		return
	}
	// The upgrade is only valid if the requester still holds its S copy.
	tx.upgrade = tx.upgrade && e.Sharers.Contains(pkt.Src)
	if e.Sharers.InvTrap() {
		tx.trapExtra += n.cfg.Coherence.TrapLatency
		sh.dirTraps++
	}
	e.Sharers.ForEach(func(s arch.TileID) {
		if s == pkt.Src {
			return
		}
		tx.waitAcks++
		sh.invSent++
		n.sendSrv(msgInvReq, s, tx.homeSeq, n.srvEncLine(req.line), t)
	})
	e.Sharers.Clear()
	if tx.waitAcks > 0 {
		dl.busy = tx
		return
	}
	n.completeTxn(sh, dl, tx, t)
}

// completeTxn grants the request and replies to the requester.
func (n *Node) completeTxn(sh *dirShard, dl *dirLine, tx *txn, now arch.Cycles) {
	e := dl.entry
	t := now
	if tx.latest > t {
		t = tx.latest
	}
	t += tx.trapExtra
	payload := dataPayload{
		line:   uint64(tx.line),
		mask:   e.LastWriterMask,
		writer: e.LastWriter,
	}

	if tx.reqType == msgShReq {
		// Track the requester as a sharer. A limited directory (Dir_iNB)
		// may reclaim a pointer: the displaced sharer must be invalidated
		// before the grant, or it would retain a copy the directory no
		// longer knows about — unreachable by later invalidations.
		evict, trap := e.Sharers.Add(tx.requester)
		if trap {
			tx.trapExtra += n.cfg.Coherence.TrapLatency
			sh.dirTraps++
		}
		if evict != arch.InvalidTile && evict != tx.requester {
			tx.waitAcks++
			sh.invSent++
			n.sendSrv(msgInvReq, evict, tx.homeSeq, n.srvEncLine(uint64(tx.line)), t)
			tx.latest = t
			dl.busy = tx // re-enters completeTxn when the ack arrives
			return
		}
		buf := n.grantBuf
		if tx.haveData {
			// Data flushed by the former owner; it is also written back
			// so every Shared copy is clean (MSI). The writeback occupies
			// the DRAM queue but is off the critical path.
			copy(buf, tx.data)
			n.dramWrite(uint64(tx.line), tx.data, t)
		} else {
			t += n.dramRead(uint64(tx.line), buf, t)
		}
		payload.flags |= flagHasData
		payload.data = buf
		n.sendSrv(msgShRep, tx.requester, tx.reqSeq, n.srvEncData(payload), t)
	} else {
		e.LastWriter = tx.requester
		e.LastWriterMask = tx.reqMask
		if tx.upgrade && !tx.haveData {
			e.Owner = tx.requester
			n.sendSrv(msgUpgRep, tx.requester, tx.reqSeq, n.srvEncData(payload), t)
		} else {
			buf := n.grantBuf
			if tx.haveData {
				// Dirty data moves owner to owner without touching DRAM.
				copy(buf, tx.data)
			} else {
				t += n.dramRead(uint64(tx.line), buf, t)
			}
			e.Owner = tx.requester
			payload.flags |= flagHasData
			payload.data = buf
			n.sendSrv(msgExRep, tx.requester, tx.reqSeq, n.srvEncData(payload), t)
		}
	}
	dl.busy = nil
	n.popPending(sh, dl)
}

// popPending starts the next queued request for the line, if any.
func (n *Node) popPending(sh *dirShard, dl *dirLine) {
	for dl.busy == nil && len(dl.pending) > 0 {
		pkt := dl.pending[0]
		dl.pending = dl.pending[1:]
		req, err := decodeReq(pkt.Payload)
		if err != nil {
			panic("memsys: " + err.Error())
		}
		n.startTxn(sh, dl, pkt, req)
	}
}

// handleHomeReply processes InvRep/WbRep/FlushRep for an in-flight
// transaction. Stale replies (transaction already satisfied by a crossing
// EvictM) are dropped by sequence-number mismatch. Called with the line's
// shard locked.
func (n *Node) handleHomeReply(sh *dirShard, pkt network.Packet, p dataPayload) {
	dl := sh.lines[cache.LineAddr(p.line)]
	if dl == nil || dl.busy == nil || dl.busy.homeSeq != pkt.Seq {
		return // stale reply from a completed transaction
	}
	tx := dl.busy
	if pkt.Time > tx.latest {
		tx.latest = pkt.Time
	}
	e := dl.entry
	switch pkt.Type {
	case msgInvRep:
		tx.waitAcks--
		if p.flags&flagHasData != 0 {
			// Defensive: an invalidated copy turned out Modified.
			n.dramWrite(p.line, p.data, pkt.Time)
		}
	case msgWbRep:
		if p.flags&flagNotPresent != 0 {
			// Per-sender FIFO guarantees the owner's EvictM reaches us
			// before a not-present WbRep; this reply cannot match an
			// open transaction.
			panic("memsys: WbRep(notPresent) for open transaction")
		}
		tx.waitData = false
		tx.haveData = true
		tx.data = cloneBytes(p.data)
		tx.dataMask = p.mask
		e.Owner = arch.InvalidTile
		// The former owner retains a Shared copy. An M line has no other
		// sharers, so the pointer set cannot overflow here; handle an
		// eviction anyway so a future protocol variant cannot silently
		// leak an untracked sharer.
		if evict, _ := e.Sharers.Add(pkt.Src); evict != arch.InvalidTile && evict != pkt.Src {
			tx.waitAcks++
			sh.invSent++
			n.sendSrv(msgInvReq, evict, tx.homeSeq, n.srvEncLine(p.line), pkt.Time)
		}
		e.LastWriter = pkt.Src
		e.LastWriterMask = p.mask
	case msgFlushRep:
		if p.flags&flagNotPresent != 0 {
			panic("memsys: FlushRep(notPresent) for open transaction")
		}
		tx.waitData = false
		tx.haveData = true
		tx.data = cloneBytes(p.data)
		tx.dataMask = p.mask
		e.Owner = arch.InvalidTile
		e.LastWriter = pkt.Src
		e.LastWriterMask = p.mask
	}
	if tx.waitAcks == 0 && !tx.waitData {
		n.completeTxn(sh, dl, tx, tx.latest)
	}
}

// handleEvictM applies a dirty writeback. If a transaction is waiting for
// a flush from the evicting owner, the writeback doubles as the flush data
// (the owner's not-present reply that follows is dropped as stale).
// Called with the line's shard locked.
func (n *Node) handleEvictM(sh *dirShard, pkt network.Packet, p dataPayload) {
	n.sendSrv(msgEvictAck, pkt.Src, pkt.Seq, n.srvEncLine(p.line), pkt.Time)
	dl := sh.dirLineOf(n, cache.LineAddr(p.line))
	e := dl.entry
	n.dramWrite(p.line, p.data, pkt.Time)
	if dl.busy != nil && dl.busy.waitData && dl.busy.dataFrom == pkt.Src {
		tx := dl.busy
		tx.waitData = false
		tx.haveData = true
		tx.data = cloneBytes(p.data)
		tx.dataMask = p.mask
		if pkt.Time > tx.latest {
			tx.latest = pkt.Time
		}
		e.Owner = arch.InvalidTile
		e.LastWriter = pkt.Src
		e.LastWriterMask = p.mask
		if tx.waitAcks == 0 {
			n.completeTxn(sh, dl, tx, tx.latest)
		}
		return
	}
	if e.Owner == pkt.Src {
		e.Owner = arch.InvalidTile
		e.LastWriter = pkt.Src
		e.LastWriterMask = p.mask
	}
}

// handleControllerOp serves Inv/Wb/Flush commands against the local caches.
// Called with the core domain (mu) locked.
func (n *Node) handleControllerOp(pkt network.Packet) {
	line, err := decodeLine(pkt.Payload)
	if err != nil {
		panic("memsys: " + err.Error())
	}
	l := cache.LineAddr(line)
	t := pkt.Time + n.l2.HitLatency()
	pay := dataPayload{line: line, writer: n.tile}

	switch pkt.Type {
	case msgInvReq:
		if ln, ok := n.l2.Invalidate(l); ok {
			if ln.State == cache.Modified {
				// Defensive: should have been a FlushReq.
				pay.flags |= flagHasData
				pay.mask = ln.WriteMask
				pay.data = ln.Data
			}
			n.invL1(l)
			n.markInvalidated(l)
		} else {
			pay.flags |= flagNotPresent
		}
		n.sendSrv(msgInvRep, pkt.Src, pkt.Seq, n.srvEncData(pay), t)
	case msgWbReq:
		if ln := n.l2.Peek(l); ln != nil {
			pay.flags |= flagHasData
			pay.mask = ln.WriteMask
			pay.data = ln.Data // copied by the payload encoder below
			n.l2.Downgrade(l)
		} else {
			pay.flags |= flagNotPresent
		}
		n.sendSrv(msgWbRep, pkt.Src, pkt.Seq, n.srvEncData(pay), t)
	case msgFlushReq:
		if ln, ok := n.l2.Invalidate(l); ok {
			pay.flags |= flagHasData
			pay.mask = ln.WriteMask
			pay.data = ln.Data
			n.invL1(l)
			n.markInvalidated(l)
		} else {
			pay.flags |= flagNotPresent
		}
		n.sendSrv(msgFlushRep, pkt.Src, pkt.Seq, n.srvEncData(pay), t)
	}
}

// completeCore finishes the tile's outstanding miss: it installs the line,
// applies the pending operation, classifies the miss, and returns the
// waiting core's channel (signaled by Serve after the send batch is
// flushed).
func (n *Node) completeCore(pkt network.Packet) (chan replyInfo, replyInfo) {
	pr := n.pending
	if pr == nil || pr.seq != pkt.Seq {
		return nil, replyInfo{}
	}
	n.pending = nil
	info := replyInfo{arrival: pkt.Time}

	switch pkt.Type {
	case msgPokeAck:
		return pr.done, info
	case msgPeekRep:
		p, err := decodePeek(pkt.Payload)
		if err != nil {
			panic("memsys: " + err.Error())
		}
		info.data = cloneBytes(p.data)
		return pr.done, info
	}

	p, err := decodeData(pkt.Payload)
	if err != nil {
		panic("memsys: " + err.Error())
	}

	switch pkt.Type {
	case msgUpgRep:
		ln := n.l2.Peek(pr.line)
		if ln == nil {
			// Home serializes per line: nothing can invalidate our copy
			// between the upgrade grant and its arrival.
			panic("memsys: upgrade grant for absent line")
		}
		ln.State = cache.Modified
		n.applyWrite(ln, pr)
		info.upgraded = true
		n.st.Upgrades++
	case msgShRep, msgExRep:
		st := cache.Shared
		if pkt.Type == msgExRep {
			st = cache.Modified
		}
		if victim, evicted := n.l2.Insert(pr.line, st, p.data); evicted {
			n.processVictim(victim, pkt.Time)
		}
		ln := n.l2.Peek(pr.line)
		if pr.isWrite {
			n.applyWrite(ln, pr)
		} else {
			copy(pr.rbuf, ln.Data[pr.off:pr.off+len(pr.rbuf)])
			n.fillL1(pr, ln.Data)
		}
		if pr.ifetch {
			n.st.IFetchMisses++
		} else {
			info.kind = n.classify(pr, p)
			n.st.MissBy[info.kind]++
			lat := pkt.Time - pr.sentAt
			if lat < 0 {
				lat = 0
			}
			n.st.MemLatencyTotal += lat
			n.st.MemAccesses++
		}
		delete(n.invalidated, pr.line)
		n.everAccessed[pr.line] = struct{}{}
	}
	return pr.done, info
}

// applyWrite stores the pending write into a Modified L2 line and keeps
// the write-through L1D copy coherent.
func (n *Node) applyWrite(ln *cache.Line, pr *pendingReq) {
	copy(ln.Data[pr.off:], pr.wbuf)
	ln.Dirty = true
	ln.WriteMask |= pr.mask
	if n.l1d != nil {
		if l1 := n.l1d.Peek(pr.line); l1 != nil {
			copy(l1.Data[pr.off:], pr.wbuf)
		}
	}
}

// fillL1 installs a freshly read line into the appropriate L1.
func (n *Node) fillL1(pr *pendingReq, data []byte) {
	if pr.ifetch {
		if n.l1i != nil {
			n.l1i.Insert(pr.line, cache.Shared, data)
		}
		return
	}
	if n.l1d != nil {
		n.l1d.Insert(pr.line, cache.Shared, data)
	}
}

// classify determines the miss kind (paper §4.4 / Figure 8).
func (n *Node) classify(pr *pendingReq, p dataPayload) stats.MissKind {
	if _, seen := n.everAccessed[pr.line]; !seen {
		return stats.MissCold
	}
	if _, inv := n.invalidated[pr.line]; inv {
		if p.writer != n.tile && p.writer != arch.InvalidTile && p.mask&pr.mask != 0 {
			return stats.MissTrueSharing
		}
		return stats.MissFalseSharing
	}
	return stats.MissCapacity
}

// processVictim handles an L2 eviction: L1 inclusion and the home
// notification (writeback for Modified victims). The notification rides
// the server's send batch, which Serve flushes before waking the core —
// so the core cannot re-request the victim line ahead of its writeback.
func (n *Node) processVictim(victim cache.Line, now arch.Cycles) {
	n.invL1(victim.Addr)
	home := n.homeOf(victim.Addr)
	if victim.State == cache.Modified {
		n.outstandingWB.Add(1)
		pay := dataPayload{line: uint64(victim.Addr), mask: victim.WriteMask, writer: n.tile, flags: flagHasData, data: victim.Data}
		n.sendSrv(msgEvictM, home, 0, n.srvEncData(pay), now)
	} else {
		n.sendSrv(msgEvictS, home, 0, n.srvEncLine(uint64(victim.Addr)), now)
	}
}

func (n *Node) invL1(l cache.LineAddr) {
	if n.l1i != nil {
		n.l1i.Invalidate(l)
	}
	if n.l1d != nil {
		n.l1d.Invalidate(l)
	}
}

func (n *Node) markInvalidated(l cache.LineAddr) {
	n.invalidated[l] = struct{}{}
}

// handlePeekPoke serves functional memory access against the home backing
// store. Valid only pre-run or post-flush (no dirty cached copies).
func (n *Node) handlePeekPoke(pkt network.Packet) {
	p, err := decodePeek(pkt.Payload)
	if err != nil {
		panic("memsys: " + err.Error())
	}
	line := uint64(p.addr) >> n.lineBits
	off := int(uint64(p.addr) & (uint64(n.lineSize) - 1))
	if pkt.Type == msgPoke {
		n.dramMu.Lock()
		n.dram.Poke(line, off, p.data)
		n.dramMu.Unlock()
		n.sendSrv(msgPokeAck, pkt.Src, pkt.Seq, nil, pkt.Time)
		return
	}
	buf := make([]byte, p.n)
	n.dramMu.Lock()
	n.dram.Peek(line, off, buf)
	n.dramMu.Unlock()
	n.sendSrv(msgPeekRep, pkt.Src, pkt.Seq, n.srvEncPeek(peekPayload{addr: p.addr, n: p.n, data: buf}), pkt.Time)
}

func (n *Node) wbAcked() {
	if n.outstandingWB.Add(-1) == 0 {
		select {
		case n.wbDrained <- struct{}{}:
		default:
		}
	}
}

func cloneBytes(b []byte) []byte {
	out := make([]byte, len(b))
	copy(out, b)
	return out
}
