package memsys

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/arch"
	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/stats"
)

// TestSingleTileVsReferenceModel drives one tile with a long random
// load/store sequence and cross-checks every load against a plain map —
// the memory system (caches, evictions, writebacks, protocol) must be
// functionally invisible.
func TestSingleTileVsReferenceModel(t *testing.T) {
	cfg := testConfig(2)
	// Tiny caches maximize eviction/refill traffic.
	cfg.L1D = config.CacheConfig{Enabled: true, Size: 512, Assoc: 2, LineSize: 64, HitLatency: 1}
	cfg.L2 = config.CacheConfig{Enabled: true, Size: 2 << 10, Assoc: 2, LineSize: 64, HitLatency: 8}
	c := newCluster(t, cfg)
	n := c.nodes[0]
	ref := make(map[arch.Addr]byte)
	rng := rand.New(rand.NewSource(7))
	const region = 1 << 14 // 16 KB working set over 2 KB of cache
	for op := 0; op < 4000; op++ {
		addr := arch.Addr(0x40000 + rng.Intn(region))
		size := 1 << rng.Intn(4) // 1, 2, 4, 8 bytes
		if addr%arch.Addr(size) != 0 {
			addr &^= arch.Addr(size - 1) // align
		}
		if rng.Intn(2) == 0 {
			buf := make([]byte, size)
			rng.Read(buf)
			n.Write(addr, buf, arch.Cycles(op))
			for i, b := range buf {
				ref[addr+arch.Addr(i)] = b
			}
		} else {
			buf := make([]byte, size)
			n.Read(addr, buf, arch.Cycles(op))
			for i, b := range buf {
				if want := ref[addr+arch.Addr(i)]; b != want {
					t.Fatalf("op %d: read %#x+%d = %d, want %d", op, uint64(addr), i, b, want)
				}
			}
		}
	}
}

// TestMultiTileDisjointVsReference runs the same property from four tiles
// over disjoint regions concurrently.
func TestMultiTileDisjointVsReference(t *testing.T) {
	cfg := testConfig(4)
	c := newCluster(t, cfg)
	var wg sync.WaitGroup
	for tile := 0; tile < 4; tile++ {
		wg.Add(1)
		go func(tile int) {
			defer wg.Done()
			n := c.nodes[tile]
			ref := make(map[arch.Addr]uint64)
			rng := rand.New(rand.NewSource(int64(tile)))
			base := arch.Addr(0x100000 * (tile + 1))
			for op := 0; op < 1500; op++ {
				addr := base + arch.Addr(rng.Intn(1<<12))&^7
				if rng.Intn(2) == 0 {
					v := rng.Uint64()
					var b [8]byte
					binary.LittleEndian.PutUint64(b[:], v)
					n.Write(addr, b[:], arch.Cycles(op))
					ref[addr] = v
				} else {
					var b [8]byte
					n.Read(addr, b[:], arch.Cycles(op))
					if got := binary.LittleEndian.Uint64(b[:]); got != ref[addr] {
						t.Errorf("tile %d op %d: %#x = %d, want %d", tile, op, uint64(addr), got, ref[addr])
						return
					}
				}
			}
		}(tile)
	}
	wg.Wait()
}

// TestReaderSeesLatestWriterChain: a chain of writers each reading the
// previous value and writing a derived one exercises M-ownership
// migration with interleaved sharers; the final value proves no write was
// lost or reordered.
func TestReaderSeesLatestWriterChain(t *testing.T) {
	cfg := testConfig(4)
	c := newCluster(t, cfg)
	addr := arch.Addr(0x77000)
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], 1)
	c.nodes[0].Write(addr, b[:], 0)
	for round := 0; round < 30; round++ {
		writer := c.nodes[(round+1)%4]
		reader := c.nodes[(round+2)%4]
		// Reader takes an S copy first (forcing the writer to upgrade
		// through an invalidation).
		reader.Read(addr, b[:], arch.Cycles(round*100))
		writer.Read(addr, b[:], arch.Cycles(round*100))
		v := binary.LittleEndian.Uint64(b[:])
		binary.LittleEndian.PutUint64(b[:], v*3+1)
		writer.Write(addr, b[:], arch.Cycles(round*100+50))
	}
	c.nodes[3].Read(addr, b[:], 1_000_000)
	want := uint64(1)
	for round := 0; round < 30; round++ {
		want = want*3 + 1
	}
	if got := binary.LittleEndian.Uint64(b[:]); got != want {
		t.Fatalf("chain result %d, want %d", got, want)
	}
}

// TestDowngradeKeepsSharedCopy: after another tile reads a Modified line,
// the former owner must retain a readable S copy (no invalidation on
// read sharing).
func TestDowngradeKeepsSharedCopy(t *testing.T) {
	c := newCluster(t, testConfig(2))
	addr := arch.Addr(0x88000)
	c.nodes[0].Write(addr, []byte{5}, 0)
	buf := make([]byte, 1)
	c.nodes[1].Read(addr, buf, 0) // downgrades tile 0 to S
	missesBefore := c.nodes[0].Stats().L2Misses
	c.nodes[0].Read(addr, buf, 1000)
	if c.nodes[0].Stats().L2Misses != missesBefore {
		t.Fatal("former owner lost its copy on downgrade")
	}
	if buf[0] != 5 {
		t.Fatal("data corrupted by downgrade")
	}
}

// TestEvictionNotifiesDirectory: after a sharer's clean eviction, a write
// by another tile must not send it an invalidation.
func TestEvictionNotifiesDirectory(t *testing.T) {
	cfg := testConfig(2)
	// Direct-mapped-ish tiny L2 to force the eviction deterministically.
	cfg.L1D = config.CacheConfig{Enabled: false}
	cfg.L2 = config.CacheConfig{Enabled: true, Size: 512, Assoc: 1, LineSize: 64, HitLatency: 8}
	c := newCluster(t, cfg)
	buf := make([]byte, 8)
	target := arch.Addr(0x10000) // line 0x400, maps to set (0x400 % 8)
	c.nodes[1].Read(target, buf, 0)
	// Evict it from tile 1 by reading another line in the same set
	// (same set index: add 8 lines * 64B = 512).
	c.nodes[1].Read(target+512, buf, 100)
	// Tile 0 writes the target line: no sharers should remain.
	c.nodes[0].Write(target, buf, 1000)
	st0 := c.nodes[0].Stats()
	st1 := c.nodes[1].Stats()
	total := st0.InvSent + st1.InvSent
	if total != 0 {
		t.Fatalf("%d invalidations sent despite clean eviction notification", total)
	}
}

// TestWriteMaskTracksWords: the accumulated write mask travels with
// writebacks so later sharing misses classify correctly even when the
// conflicting words were written after the initial GetX.
func TestWriteMaskTracksWords(t *testing.T) {
	c := newCluster(t, testConfig(2))
	base := arch.Addr(0x99000)
	buf := make([]byte, 8)
	c.nodes[0].Read(base+16, buf, 0) // tile 0 caches word 2
	// Tile 1 takes M via word 0, then also writes word 2 while M.
	c.nodes[1].Write(base, buf, 0)
	c.nodes[1].Write(base+16, buf, 10)
	// Tile 0 re-reads word 2: the writer's accumulated mask covers word
	// 2, so this must classify as true sharing.
	c.nodes[0].Read(base+16, buf, 10_000)
	st := c.nodes[0].Stats()
	if st.MissBy[stats.MissTrueSharing] != 1 {
		t.Fatalf("mask did not accumulate: %v", st.MissBy)
	}
}

// TestLockFreeHitPathUnderInvalidationStorm hammers one tile's lock-free
// hit path while remote tiles concurrently force invalidations, flushes,
// and upgrade demotions of the very same lines (each tile owns one 8-byte
// word per line, remote tiles write — and sometimes first read, forcing
// S-copy upgrades — their words). Run under -race this is the memory-model
// check of the single-writer ownership protocol (DESIGN.md §13); the
// assertions check that no write is lost or torn and that the core-owned
// hit/miss counters stay exact:
//
//   - tile 0 reads back exactly what it wrote, every iteration, even when
//     the line was invalidated or downgraded in between;
//   - Loads/Stores equal the issued operation counts;
//   - every load consults the L1D exactly once (L1DHits+L1DMisses ==
//     Loads) and the L2 is consulted exactly once per store and per L1D
//     miss — identities that would be violated if an intervention ever
//     raced the hit path into a double count or a lost one.
func TestLockFreeHitPathUnderInvalidationStorm(t *testing.T) {
	cfg := testConfig(4)
	c := newCluster(t, cfg)
	const lines = 8
	const iters = 300
	base := arch.Addr(0x500000)
	var wg sync.WaitGroup
	for tile := 1; tile < 4; tile++ {
		wg.Add(1)
		go func(tile int) {
			defer wg.Done()
			n := c.nodes[tile]
			rng := rand.New(rand.NewSource(int64(tile) * 9973))
			var b [8]byte
			for k := 0; k < iters; k++ {
				line := rng.Intn(lines)
				addr := base + arch.Addr(line*64+tile*8)
				if rng.Intn(3) == 0 {
					// Take a Shared copy first so the write becomes an
					// upgrade — which a concurrent writer can demote.
					n.Read(addr, b[:], arch.Cycles(k))
				}
				binary.LittleEndian.PutUint64(b[:], uint64(tile)<<32|uint64(k+1))
				n.Write(addr, b[:], arch.Cycles(k))
			}
		}(tile)
	}
	var loads, stores uint64
	wg.Add(1)
	go func() {
		defer wg.Done()
		n := c.nodes[0]
		var b [8]byte
		for k := 0; k < 4*iters; k++ {
			addr := base + arch.Addr((k%lines)*64)
			binary.LittleEndian.PutUint64(b[:], uint64(k))
			n.Write(addr, b[:], arch.Cycles(k))
			stores++
			n.Read(addr, b[:], arch.Cycles(k))
			loads++
			if got := binary.LittleEndian.Uint64(b[:]); got != uint64(k) {
				t.Errorf("iter %d: read back %d, want %d", k, got, k)
				return
			}
		}
	}()
	wg.Wait()

	st := c.nodes[0].Stats()
	if st.Loads != loads || st.Stores != stores {
		t.Fatalf("counters loads=%d stores=%d, issued %d/%d", st.Loads, st.Stores, loads, stores)
	}
	if st.L1DHits+st.L1DMisses != st.Loads {
		t.Fatalf("L1D consults %d+%d != loads %d", st.L1DHits, st.L1DMisses, st.Loads)
	}
	if st.L2Hits+st.L2Misses != st.Stores+st.L1DMisses {
		t.Fatalf("L2 consults %d+%d != stores %d + L1D misses %d",
			st.L2Hits, st.L2Misses, st.Stores, st.L1DMisses)
	}
	// Every tile's final word values: tile 0's word holds its last write,
	// remote words carry their writer's tag (or were never written).
	var b [8]byte
	for line := 0; line < lines; line++ {
		c.nodes[0].Read(base+arch.Addr(line*64), b[:], 1_000_000)
		// The last write to this line by tile 0 was the largest k < 4*iters
		// with k%lines == line.
		if got, want := binary.LittleEndian.Uint64(b[:]), uint64(4*iters-lines+line); got != want {
			t.Fatalf("line %d word 0 = %d, want %d", line, got, want)
		}
		for tile := 1; tile < 4; tile++ {
			c.nodes[0].Read(base+arch.Addr(line*64+tile*8), b[:], 1_000_000)
			if got := binary.LittleEndian.Uint64(b[:]); got != 0 && got>>32 != uint64(tile) {
				t.Fatalf("line %d word of tile %d holds foreign value %#x", line, tile, got)
			}
		}
	}
}

// TestManySharerInvalidationStormSoA exercises the structure-of-arrays
// directory beyond one sharer word: 72 tiles (a two-word full-map bit
// vector) all read the same line concurrently, then one writer upgrades
// and must invalidate every other sharer found by the stride-2 bitset
// walk. Under -race the concurrent readers hammer the SoA cache handles
// and the shared directory shard; the exact invalidation count proves no
// sharer bit in either word is lost or double-counted across rounds.
func TestManySharerInvalidationStormSoA(t *testing.T) {
	const tiles = 72
	const rounds = 20
	c := newCluster(t, testConfig(tiles))
	addr := arch.Addr(0x660000)
	for r := 0; r < rounds; r++ {
		var wg sync.WaitGroup
		for tile := 0; tile < tiles; tile++ {
			wg.Add(1)
			go func(tile int) {
				defer wg.Done()
				var b [8]byte
				c.nodes[tile].Read(addr, b[:], arch.Cycles(r*100))
				if got := binary.LittleEndian.Uint64(b[:]); got != uint64(r) {
					t.Errorf("round %d tile %d read %d", r, tile, got)
				}
			}(tile)
		}
		wg.Wait()
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], uint64(r+1))
		c.nodes[0].Write(addr, b[:], arch.Cycles(r*100+50))
	}
	var invs uint64
	for _, n := range c.nodes {
		invs += n.Stats().InvSent
	}
	// Every round all 72 tiles hold S copies when tile 0 upgrades: 71
	// invalidations, every one discovered in the two-word sharer vector.
	if want := uint64(rounds * (tiles - 1)); invs != want {
		t.Fatalf("invalidations sent = %d, want %d", invs, want)
	}
}

// TestPeekPokeStraddlesLines exercises the functional path across line
// and home boundaries.
func TestPeekPokeStraddlesLines(t *testing.T) {
	c := newCluster(t, testConfig(4))
	data := bytes.Repeat([]byte{0xA5, 0x5A}, 100) // 200 bytes over 4 lines
	addr := arch.Addr(0xAB000 + 32)               // unaligned start
	c.nodes[0].Poke(addr, data)
	got := make([]byte, len(data))
	c.nodes[2].Peek(addr, got)
	if !bytes.Equal(got, data) {
		t.Fatal("straddling peek/poke mismatch")
	}
}

// TestFlushAllIdempotent: flushing twice (second time with cold caches)
// must be harmless.
func TestFlushAllIdempotent(t *testing.T) {
	c := newCluster(t, testConfig(2))
	n := c.nodes[0]
	n.Write(0xCC000, []byte{1, 2, 3}, 0)
	n.FlushAll(100)
	n.FlushAll(200)
	got := make([]byte, 3)
	n.Peek(0xCC000, got)
	if !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatal("double flush lost data")
	}
}

// TestLineAddrHomeStability: the home of a line must be a pure function
// of the address (no drift across nodes).
func TestLineAddrHomeStability(t *testing.T) {
	cfg := testConfig(4)
	c := newCluster(t, cfg)
	for _, addr := range []arch.Addr{0, 64, 4096, 0xFFFFC0} {
		line := c.nodes[0].lineOf(addr)
		h0 := c.nodes[0].homeOf(line)
		h3 := c.nodes[3].homeOf(line)
		if h0 != h3 {
			t.Fatalf("home of %#x differs across nodes: %v vs %v", uint64(addr), h0, h3)
		}
		if h0 != cfg.HomeTile(addr) {
			t.Fatalf("node home %v != config home %v", h0, cfg.HomeTile(addr))
		}
	}
	_ = cache.LineAddr(0)
}
