package memsys

// Checkpoint support. A tile's memory state is captured and restored
// inside its own server goroutine: the control plane queues a function
// with EnqueueCtrl and pokes the server with a CtrlMsg packet, so the
// snapshot is serialized with message dispatch exactly like any protocol
// message. The happens-before chain to the parked core context — the
// thread's last cache writes precede its barrier park, which precedes the
// MCP's decision to checkpoint, which precedes the control packet's
// delivery here — makes the core-domain reads race-free; the ownership
// word is still claimed, as an idle-tile intervention would, to assert
// the tile really is quiesced.

import (
	"fmt"
	"sort"

	"repro/internal/arch"
	"repro/internal/cache"
	"repro/internal/checkpoint"
)

// CtrlMsg is the ClassMemory message type that pokes a tile's memory
// server to run its queued control functions. It must be sent from a
// control endpoint (negative ID), never tile-to-tile: the server
// unconditionally balances selfInflight for packets whose Src is the tile
// itself, and a control packet must not participate in that accounting.
const CtrlMsg = msgCkpt

// EnqueueCtrl queues fn to run inside the server goroutine. The caller
// must then send a CtrlMsg packet to this tile from a control endpoint;
// the server runs every queued function when the packet arrives.
func (n *Node) EnqueueCtrl(fn func()) {
	n.ctrlMu.Lock()
	n.ctrlQ = append(n.ctrlQ, fn)
	n.ctrlMu.Unlock()
}

func (n *Node) runCtrl() {
	n.ctrlMu.Lock()
	q := n.ctrlQ
	n.ctrlQ = nil
	n.ctrlMu.Unlock()
	for _, fn := range q {
		fn()
	}
}

// Quiesced reports whether the tile's memory subsystem is at rest: core
// domain free, no queued interventions, no outstanding request or
// writeback, and no self-directed message in flight. Every field read is
// atomic or mutex-guarded, so any goroutine may probe. A true result is
// only meaningful combined with the MCP's global traffic-stability check
// (DESIGN.md §18) — locally idle tiles can still have packets inbound.
func (n *Node) Quiesced() bool {
	if n.coreState.Load() != 0 || n.outstandingWB.Load() != 0 || n.selfInflight.Load() != 0 {
		return false
	}
	n.mu.Lock()
	idle := len(n.intvQ) == 0 && n.pending == nil
	n.mu.Unlock()
	return idle
}

// Capture fills ts with the node's complete memory state. It must run in
// the server goroutine (via EnqueueCtrl) on a quiesced, drained tile; it
// errors rather than snapshotting a tile that still has protocol work in
// flight.
func (n *Node) Capture(ts *checkpoint.TileState) error {
	n.mu.Lock()
	if !n.coreState.CompareAndSwap(0, stSrvBusy) {
		n.mu.Unlock()
		return fmt.Errorf("memsys: tile %d not quiesced at capture (core active)", n.tile)
	}
	if n.pending != nil || len(n.intvQ) != 0 {
		n.coreState.Store(0)
		n.mu.Unlock()
		return fmt.Errorf("memsys: tile %d not quiesced at capture (outstanding request)", n.tile)
	}
	if n.l1i != nil {
		ts.L1I = n.l1i.Capture()
	}
	if n.l1d != nil {
		ts.L1D = n.l1d.Capture()
	}
	ts.L2 = n.l2.Capture()
	ts.ReqSeq = n.seq
	ts.EverAccessed = sortedLines(n.everAccessed)
	ts.Invalidated = sortedLines(n.invalidated)
	ts.Stats = n.st
	n.coreState.Store(0)
	n.mu.Unlock()

	ts.DirShards = make([]checkpoint.DirShardState, len(n.shards))
	for i := range n.shards {
		sh := &n.shards[i]
		sh.mu.Lock()
		ss := &ts.DirShards[i]
		ss.HomeSeq = sh.homeSeq
		ss.DirRequests = sh.dirRequests
		ss.DirTraps = sh.dirTraps
		ss.InvSent = sh.invSent
		//graphite:maporder entries are sorted by arena index below, so iteration order never reaches the snapshot
		for line, dl := range sh.lines {
			if dl.busy != nil || len(dl.pending) > 0 {
				sh.mu.Unlock()
				return fmt.Errorf("memsys: tile %d not quiesced at capture (open transaction on line %#x)", n.tile, uint64(line))
			}
			e := dl.entry
			es := checkpoint.DirEntryState{
				Index:          int32(e.Index()),
				Line:           uint64(line),
				Owner:          int32(e.Owner()),
				LastWriter:     int32(e.LastWriter()),
				LastWriterMask: e.LastWriterMask(),
				Cursor:         e.Cursor(),
			}
			e.ForEachSharer(func(t arch.TileID) {
				es.Sharers = append(es.Sharers, int32(t))
			})
			ss.Entries = append(ss.Entries, es)
		}
		sort.Slice(ss.Entries, func(a, b int) bool { return ss.Entries[a].Index < ss.Entries[b].Index })
		sh.mu.Unlock()
	}

	n.dramMu.Lock()
	ts.DRAM = *n.dram.Capture()
	n.dramMu.Unlock()
	return nil
}

// Restore overwrites the node's memory state from a snapshot taken by
// Capture on an identically configured tile. Like Capture it must run in
// the server goroutine of a quiesced node — in practice a freshly
// constructed cluster before any thread has started.
func (n *Node) Restore(ts *checkpoint.TileState) error {
	if arch.TileID(ts.Tile) != n.tile {
		return fmt.Errorf("memsys: restoring tile %d state into tile %d", ts.Tile, n.tile)
	}
	if (ts.L1I != nil) != (n.l1i != nil) || (ts.L1D != nil) != (n.l1d != nil) || ts.L2 == nil {
		return fmt.Errorf("memsys: tile %d restore cache-hierarchy shape mismatch", n.tile)
	}
	if len(ts.DirShards) != len(n.shards) {
		return fmt.Errorf("memsys: tile %d restore shard-count mismatch: snapshot %d, node %d", n.tile, len(ts.DirShards), len(n.shards))
	}

	n.mu.Lock()
	if !n.coreState.CompareAndSwap(0, stSrvBusy) {
		n.mu.Unlock()
		return fmt.Errorf("memsys: tile %d not quiesced at restore", n.tile)
	}
	var err error
	if ts.L1I != nil {
		err = n.l1i.Restore(ts.L1I)
	}
	if err == nil && ts.L1D != nil {
		err = n.l1d.Restore(ts.L1D)
	}
	if err == nil {
		err = n.l2.Restore(ts.L2)
	}
	if err != nil {
		n.coreState.Store(0)
		n.mu.Unlock()
		return err
	}
	n.seq = ts.ReqSeq
	n.everAccessed = make(map[cache.LineAddr]struct{}, len(ts.EverAccessed))
	for _, l := range ts.EverAccessed {
		n.everAccessed[cache.LineAddr(l)] = struct{}{}
	}
	n.invalidated = make(map[cache.LineAddr]struct{}, len(ts.Invalidated))
	for _, l := range ts.Invalidated {
		n.invalidated[cache.LineAddr(l)] = struct{}{}
	}
	n.st = ts.Stats
	n.st.TileID = n.tile
	n.coreState.Store(0)
	n.mu.Unlock()

	for i := range n.shards {
		sh := &n.shards[i]
		ss := &ts.DirShards[i]
		sh.mu.Lock()
		if len(sh.lines) != 0 {
			sh.mu.Unlock()
			return fmt.Errorf("memsys: tile %d shard %d not empty at restore", n.tile, i)
		}
		// Entries are re-allocated in arena-index order into the empty
		// store, so every Ref lands at its original index; sharers are
		// re-added in captured (canonical) order, which reproduces
		// pointer-slot layout exactly.
		for idx, es := range ss.Entries {
			if int(es.Index) != idx {
				sh.mu.Unlock()
				return fmt.Errorf("memsys: tile %d shard %d entry order broken at %d (index %d)", n.tile, i, idx, es.Index)
			}
			dl := sh.dirLineOf(n, cache.LineAddr(es.Line))
			e := dl.entry
			if e.Index() != idx {
				sh.mu.Unlock()
				return fmt.Errorf("memsys: tile %d shard %d arena index drift at %d", n.tile, i, idx)
			}
			for _, t := range es.Sharers {
				e.AddSharer(arch.TileID(t))
			}
			e.SetOwner(arch.TileID(es.Owner))
			e.SetLastWriter(arch.TileID(es.LastWriter))
			e.SetLastWriterMask(es.LastWriterMask)
			e.SetCursor(es.Cursor)
		}
		sh.homeSeq = ss.HomeSeq
		sh.dirRequests = ss.DirRequests
		sh.dirTraps = ss.DirTraps
		sh.invSent = ss.InvSent
		sh.mu.Unlock()
	}

	n.dramMu.Lock()
	n.dram.Restore(&ts.DRAM)
	n.dramMu.Unlock()
	return nil
}

// sortedLines flattens a line set into a sorted slice (canonical
// encoding for the checkpoint).
func sortedLines(m map[cache.LineAddr]struct{}) []uint64 {
	if len(m) == 0 {
		return nil
	}
	out := make([]uint64, 0, len(m))
	//graphite:maporder the slice is sorted below, so iteration order never reaches the snapshot
	for l := range m {
		out = append(out, uint64(l))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
