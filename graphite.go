// Package graphite is a from-scratch Go reproduction of Graphite, the
// distributed parallel simulator for multicores of Miller et al. (HPCA
// 2010). It provides application-level functional and performance modeling
// of tiled multicore architectures: in-order cores, private L1/L2 caches
// kept coherent by a distributed directory MSI protocol (full-map,
// Dir_iNB, or LimitLESS), per-tile DRAM controllers, configurable on-chip
// network models, and the lax synchronization family (Lax, LaxBarrier,
// LaxP2P) that lets tile clocks run loosely coupled for speed.
//
// A simulation executes a Program — a set of thread functions written
// against the Thread API — on a target architecture described by a Config.
// Threads map one-to-one onto target tiles and are striped across one or
// more simulated host processes that communicate only through the
// transport layer (in-memory channels or real TCP sockets), preserving
// Graphite's single-process illusion: one shared simulated address space,
// one file table, pthread-like spawn/join and synchronization.
//
// Quickstart:
//
//	cfg := graphite.DefaultConfig()
//	cfg.Tiles = 16
//	prog := graphite.Program{
//		Name: "hello",
//		Funcs: []graphite.ThreadFunc{
//			func(t *graphite.Thread, arg uint64) {
//				a := t.Malloc(8)
//				t.Store64(a, 42)
//			},
//		},
//	}
//	rs, err := graphite.Run(cfg, prog, 0)
//	fmt.Println(rs.SimulatedCycles, rs.Wall)
package graphite

import (
	"repro/internal/arch"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/coremodel"
	"repro/internal/stats"
)

// Core vocabulary types, re-exported from the internal packages so that
// applications only import this package.
type (
	// Config is the complete simulation configuration (see DefaultConfig).
	Config = config.Config
	// CacheConfig configures one cache level.
	CacheConfig = config.CacheConfig
	// Program is a target application: Funcs[0] is main.
	Program = core.Program
	// Thread is the per-thread execution context (the Graphite API).
	Thread = core.Thread
	// ThreadFunc is an application thread entry point.
	ThreadFunc = core.ThreadFunc
	// RunStats is the outcome of one run.
	RunStats = core.RunStats
	// SkewSample is one clock-skew observation (Figure 7).
	SkewSample = core.SkewSample
	// Addr is a simulated memory address.
	Addr = arch.Addr
	// Cycles counts simulated cycles.
	Cycles = arch.Cycles
	// ThreadID identifies an application thread (equal to its tile ID).
	ThreadID = arch.ThreadID
	// TileID identifies a target tile.
	TileID = arch.TileID
	// TileStats is one tile's statistics record.
	TileStats = stats.Tile
	// Totals aggregates tile statistics.
	Totals = stats.Totals
	// InstrKind labels compute-instruction cost classes.
	InstrKind = coremodel.InstrKind
	// MissKind classifies cache misses (Figure 8).
	MissKind = stats.MissKind
)

// Instruction kinds for Thread.Compute.
const (
	// Arith is a simple ALU instruction.
	Arith = coremodel.Arith
	// Mul is an integer multiply.
	Mul = coremodel.Mul
	// Div is an integer divide.
	Div = coremodel.Div
	// FP is a floating-point instruction.
	FP = coremodel.FP
)

// Synchronization models (paper §3.6).
const (
	// Lax lets clocks run freely between application events.
	Lax = config.Lax
	// LaxBarrier adds a global barrier every Config.Sync.BarrierQuantum.
	LaxBarrier = config.LaxBarrier
	// LaxP2P adds random pairwise clock synchronization.
	LaxP2P = config.LaxP2P
)

// Cache coherence protocols (paper §4.4).
const (
	// FullMap tracks every sharer in a bit vector.
	FullMap = config.FullMap
	// LimitedNB is the Dir_iNB limited directory.
	LimitedNB = config.LimitedNB
	// LimitLESS traps to software beyond Config.Coherence.DirPointers.
	LimitLESS = config.LimitLESS
)

// Network models (paper §3.3).
const (
	// NetMagic forwards with zero delay.
	NetMagic = config.NetMagic
	// NetMeshHop is a mesh with hop latency only.
	NetMeshHop = config.NetMeshHop
	// NetMeshContention adds analytical link contention.
	NetMeshContention = config.NetMeshContention
)

// Transports (paper §3.3.1).
const (
	// TransportChannel uses in-memory mailboxes.
	TransportChannel = config.TransportChannel
	// TransportTCP uses real TCP sockets.
	TransportTCP = config.TransportTCP
)

// Miss kinds (Figure 8).
const (
	// MissCold is a compulsory miss.
	MissCold = stats.MissCold
	// MissCapacity is a capacity/conflict miss.
	MissCapacity = stats.MissCapacity
	// MissTrueSharing is a coherence miss on truly shared words.
	MissTrueSharing = stats.MissTrueSharing
	// MissFalseSharing is a line-granularity coherence miss.
	MissFalseSharing = stats.MissFalseSharing
)

// DefaultConfig returns the target architecture of the paper's Table 1.
func DefaultConfig() Config { return config.Default() }

// Simulator is one prepared simulation instance.
type Simulator struct {
	cluster *core.Cluster
}

// New builds and starts the simulation infrastructure for prog under cfg.
// Callers must Close the simulator.
func New(cfg Config, prog Program) (*Simulator, error) {
	cl, err := core.NewCluster(cfg, prog)
	if err != nil {
		return nil, err
	}
	return &Simulator{cluster: cl}, nil
}

// Run executes the program's main thread with arg and blocks until every
// application thread exits. It may be called once per Simulator.
func (s *Simulator) Run(arg uint64) (*RunStats, error) {
	return s.cluster.Run(arg)
}

// Peek reads simulated memory functionally; valid before Run and after it
// returns (caches are flushed at completion).
func (s *Simulator) Peek(addr Addr, buf []byte) { s.cluster.Peek(addr, buf) }

// Poke writes simulated memory functionally (same validity as Peek).
func (s *Simulator) Poke(addr Addr, buf []byte) { s.cluster.Poke(addr, buf) }

// Close tears down the simulation.
func (s *Simulator) Close() { s.cluster.Close() }

// Run is the one-shot convenience wrapper: build, run, close.
func Run(cfg Config, prog Program, arg uint64) (*RunStats, error) {
	sim, err := New(cfg, prog)
	if err != nil {
		return nil, err
	}
	defer sim.Close()
	return sim.Run(arg)
}
