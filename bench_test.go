// Benchmarks regenerating every table and figure of the paper's
// evaluation (§4), one per experiment, plus ablation benches for the
// design choices called out in DESIGN.md and micro-benches that keep the
// simulator's own allocation behaviour visible (the Go-GC concern).
//
// The experiment benches run the Quick preset per iteration and report
// the headline quantity of the corresponding table/figure as a custom
// metric. cmd/graphite-sweep prints the full rows.
package graphite_test

import (
	"testing"

	graphite "repro"
	"repro/internal/config"
	"repro/internal/experiments"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// BenchmarkFig4HostScaling regenerates Figure 4: simulation wall time as
// host cores grow. Reported metric: speedup of the last host-core count
// versus one host core.
func BenchmarkFig4HostScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig4(experiments.Quick, []string{"radix"}, []int{1, 2})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Points[len(res.Points)-1].Speedup, "speedup-max-cores")
	}
}

// BenchmarkTable2Slowdown regenerates Table 2: simulation slowdown versus
// native execution on 1 and N host processes.
func BenchmarkTable2Slowdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table2(experiments.Quick, []string{"fmm", "radix"})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Median1, "median-slowdown-1proc")
		b.ReportMetric(res.Median8, "median-slowdown-Nproc")
	}
}

// BenchmarkFig5LargeTarget regenerates Figure 5: a thread-per-tile
// matrix-multiply across host process counts.
func BenchmarkFig5LargeTarget(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig5(experiments.Quick, []int{1, 2})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Points[len(res.Points)-1].Speedup, "speedup-max-procs")
	}
}

// BenchmarkFig6SyncModels regenerates Figure 6 / Table 3: run time, error,
// and CoV of the three synchronization models.
func BenchmarkFig6SyncModels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table3(experiments.Quick, []string{"radix"}, 2)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MeanRunTime[config.LaxBarrier][0], "barrier-runtime-vs-lax")
		b.ReportMetric(res.MeanError[config.Lax], "lax-error-pct")
		b.ReportMetric(res.MeanError[config.LaxP2P], "p2p-error-pct")
	}
}

// BenchmarkFig7ClockSkew regenerates Figure 7: maximum clock skew per
// synchronization model.
func BenchmarkFig7ClockSkew(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		for _, tr := range res.Traces {
			b.ReportMetric(float64(tr.MaxSkew), "max-skew-"+tr.Model.String())
		}
	}
}

// BenchmarkFig8MissRates regenerates Figure 8: the miss breakdown as line
// size changes. Reported metric: radix false-sharing rate at 256 B lines
// (the spike the paper calls out).
func BenchmarkFig8MissRates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8(experiments.Quick, []string{"radix", "lu_cont"}, []int{64, 256}, 0)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range res.Points {
			if p.Benchmark == "radix" && p.LineSize == 256 {
				b.ReportMetric(100*p.Rates[stats.MissFalseSharing], "radix-false-pct-256B")
			}
			if p.Benchmark == "lu_cont" && p.LineSize == 256 {
				b.ReportMetric(100*p.Total, "lu-total-pct-256B")
			}
		}
	}
}

// BenchmarkFig9Coherence regenerates Figure 9: blackscholes speedup under
// the four directory schemes.
func BenchmarkFig9Coherence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig9(experiments.Quick, []int{1, 8}, 0)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range res.Points {
			if p.Tiles == 8 {
				b.ReportMetric(p.Speedup, "speedup8-"+p.Scheme)
			}
		}
	}
}

// runBench executes one workload under cfg once per iteration.
func runBench(b *testing.B, name string, threads, scale int, cfg graphite.Config) *graphite.RunStats {
	b.Helper()
	w, ok := workloads.Get(name)
	if !ok {
		b.Fatalf("unknown workload %s", name)
	}
	var last *graphite.RunStats
	for i := 0; i < b.N; i++ {
		rs, err := graphite.Run(cfg, w.Build(workloads.Params{Threads: threads, Scale: scale}), 0)
		if err != nil {
			b.Fatal(err)
		}
		last = rs
	}
	return last
}

func quickCfg(tiles int) graphite.Config {
	cfg := graphite.DefaultConfig()
	cfg.Tiles = tiles
	cfg.L1I = graphite.CacheConfig{Enabled: false}
	cfg.L1D = graphite.CacheConfig{Enabled: true, Size: 16 << 10, Assoc: 8, LineSize: 64, HitLatency: 1}
	cfg.L2 = graphite.CacheConfig{Enabled: true, Size: 256 << 10, Assoc: 8, LineSize: 64, HitLatency: 8}
	return cfg
}

// BenchmarkAblationContentionModel compares the mesh network with and
// without the analytical contention model (DESIGN.md decision 5): the
// contention model must raise modeled memory latency under load without
// wrecking simulator throughput.
func BenchmarkAblationContentionModel(b *testing.B) {
	for _, kind := range []struct {
		name string
		k    config.NetworkModelKind
	}{{"hop", config.NetMeshHop}, {"contention", config.NetMeshContention}} {
		b.Run(kind.name, func(b *testing.B) {
			cfg := quickCfg(8)
			cfg.MemNet.Kind = kind.k
			rs := runBench(b, "ocean_cont", 8, 24, cfg)
			b.ReportMetric(rs.Totals.AvgMemLatency(), "avg-mem-latency-cycles")
		})
	}
}

// BenchmarkAblationStoreBuffer compares store-buffer sizes (paper §3.1's
// configurable store buffers): without one, store latency lands on the
// critical path and simulated cycles rise.
func BenchmarkAblationStoreBuffer(b *testing.B) {
	for _, sb := range []int{0, 8} {
		b.Run(map[int]string{0: "disabled", 8: "size8"}[sb], func(b *testing.B) {
			cfg := quickCfg(8)
			cfg.Core.StoreBufferSize = sb
			rs := runBench(b, "radix", 8, 9, cfg)
			b.ReportMetric(float64(rs.SimulatedCycles), "sim-cycles")
		})
	}
}

// BenchmarkAblationP2PSlack sweeps the LaxP2P slack (paper §4.3 notes the
// accuracy/performance trade-off is tunable).
func BenchmarkAblationP2PSlack(b *testing.B) {
	for _, slack := range []graphite.Cycles{1_000, 100_000} {
		b.Run(map[graphite.Cycles]string{1_000: "slack1k", 100_000: "slack100k"}[slack], func(b *testing.B) {
			cfg := quickCfg(8)
			cfg.Sync.Model = graphite.LaxP2P
			cfg.Sync.P2PSlack = slack
			cfg.Sync.P2PInterval = 1_000
			rs := runBench(b, "ocean_cont", 8, 24, cfg)
			b.ReportMetric(float64(rs.SimulatedCycles), "sim-cycles")
		})
	}
}

// BenchmarkAblationProgressWindow sweeps the global-progress window size
// (paper §3.6.1: sized on the order of the tile count to damp outliers).
func BenchmarkAblationProgressWindow(b *testing.B) {
	for _, win := range []int{1, 32} {
		b.Run(map[int]string{1: "win1", 32: "win32"}[win], func(b *testing.B) {
			cfg := quickCfg(8)
			cfg.ProgressWindow = win
			rs := runBench(b, "radix", 8, 9, cfg)
			b.ReportMetric(rs.Totals.AvgMemLatency(), "avg-mem-latency-cycles")
		})
	}
}

// BenchmarkAblationCoreModel compares the in-order and out-of-order core
// models (paper §3.1: swappable core models over the same functional
// execution): the OoO window hides load latency, so simulated cycles drop.
func BenchmarkAblationCoreModel(b *testing.B) {
	for _, kind := range []struct {
		name string
		k    config.CoreModelKind
	}{{"inorder", config.CoreInOrder}, {"ooo", config.CoreOutOfOrder}} {
		b.Run(kind.name, func(b *testing.B) {
			cfg := quickCfg(8)
			cfg.Core.Kind = kind.k
			cfg.Core.ROBWindow = 64
			rs := runBench(b, "ocean_cont", 8, 24, cfg)
			b.ReportMetric(float64(rs.SimulatedCycles), "sim-cycles")
		})
	}
}

// BenchmarkSimThroughputRadix measures end-to-end simulator throughput on
// one representative kernel (simulated instructions per wall second and
// allocations — the GC-pressure watchdog).
func BenchmarkSimThroughputRadix(b *testing.B) {
	b.ReportAllocs()
	cfg := quickCfg(8)
	rs := runBench(b, "radix", 8, 9, cfg)
	b.ReportMetric(float64(rs.Totals.Instructions)/rs.Wall.Seconds(), "sim-instr/sec")
}

// BenchmarkSimThroughputMatmul is the compute-heavy counterpart.
func BenchmarkSimThroughputMatmul(b *testing.B) {
	b.ReportAllocs()
	cfg := quickCfg(4)
	rs := runBench(b, "matmul", 4, 16, cfg)
	b.ReportMetric(float64(rs.Totals.Instructions)/rs.Wall.Seconds(), "sim-instr/sec")
}
